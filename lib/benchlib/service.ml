type config = {
  cache : Result_cache.t option;
  isolate : bool;
  mem_mb : int option;
  default_timeout : float;
  max_timeout : float;
  max_k : int;
  supervisor : Serve.Supervisor.t;
}

let default_config () =
  {
    cache = Result_cache.of_env ();
    isolate = Kit.Proc.enabled ();
    mem_mb = Kit.Guard.mem_budget_mb ();
    default_timeout = 10.0;
    max_timeout = 60.0;
    max_k = 8;
    supervisor = Serve.Supervisor.create ();
  }

(* ------------------------------------------------------------------ *)
(* Payload parsing                                                     *)
(* ------------------------------------------------------------------ *)

let media_type (req : Serve.Http.request) =
  match Serve.Http.header req "content-type" with
  | None -> "application/x-hyperbench"
  | Some v -> (
      match String.index_opt v ';' with
      | Some i -> String.lowercase_ascii (String.trim (String.sub v 0 i))
      | None -> String.lowercase_ascii (String.trim v))

(* A parse failure keeps the structured diagnostics so the 422 body can
   carry machine-readable positions alongside the rendered report; only
   unknown media types stay a plain 415. *)
type payload_error =
  | Unsupported of string
  | Invalid of { format : string; source : string; diags : Kit.Diag.t list }

let parse_payload (req : Serve.Http.request) =
  let body = req.Serve.Http.body in
  let invalid format diags =
    Error (Invalid { format; source = body; diags })
  in
  match media_type req with
  | "text/plain" | "application/x-hyperbench" -> (
      match Hg.Hypergraph.parse_report body with
      | Ok h -> Ok h
      | Error ds -> invalid "hg" ds)
  | "application/x-hyperbench-binary" | "application/octet-stream" -> (
      match Hg.Binary.of_string_report body with
      | Ok h -> Ok h
      | Error d -> invalid "hbx" [ d ])
  | "application/sql" | "text/x-sql" -> (
      match Sql.Convert.sql_to_hypergraphs_report body with
      | Error ds -> invalid "sql" ds
      | Ok convs -> (
          match
            List.find_map
              (fun (_, c) -> c.Sql.Convert.hypergraph)
              convs
          with
          | Some h -> Ok h
          | None ->
              invalid "sql"
                [
                  Kit.Diag.error (Kit.Diag.point 0)
                    "SQL contained no convertible query";
                ]))
  | "application/xml" | "text/xml" | "application/x-xcsp" -> (
      match Xcsp3.Xcsp.read_report body with
      | Ok h -> Ok h
      | Error ds -> invalid "xcsp" ds)
  | mt -> Error (Unsupported mt)

(* ------------------------------------------------------------------ *)
(* Solving                                                             *)
(* ------------------------------------------------------------------ *)

(* What a solve produces — plain data only, it crosses a [Proc] pipe via
   Marshal when isolation is on. *)
type solved = {
  s_verdict : string;  (* "yes" | "no" | "timeout" *)
  s_k : int;  (* the level the verdict is about *)
  s_width : int;  (* witness width, -1 when none *)
  s_decomp : string;  (* Decomp_io.to_text witness, "" when none *)
  s_algorithm : string;  (* deciding algorithm *)
  s_cache : string;  (* "off" | "hit" | "miss" — every level was a hit *)
  s_stats : Kit.Metrics.snapshot;
}

type budget = Seconds of float | Fuel of int

let fresh_deadline = function
  | Seconds s -> Kit.Deadline.of_seconds s
  | Fuel f -> Kit.Deadline.of_fuel f

let yes h d ~k ~alg =
  {
    s_verdict = "yes";
    s_k = k;
    s_width = Decomp.width d;
    s_decomp = Decomp_io.to_text h d;
    s_algorithm = alg;
    s_cache = "off";
    s_stats = Kit.Metrics.empty;
  }

let no ~k ~alg =
  { s_verdict = "no"; s_k = k; s_width = -1; s_decomp = "";
    s_algorithm = alg; s_cache = "off"; s_stats = Kit.Metrics.empty }

let timeout ~k ~alg =
  { s_verdict = "timeout"; s_k = k; s_width = -1; s_decomp = "";
    s_algorithm = alg; s_cache = "off"; s_stats = Kit.Metrics.empty }

(* Check(HD,k) with the cache in the loop — mirrors
   [Analysis.analyze_one]: validated hits replace the solve, definitive
   verdicts are written back, timeouts stay uncached. Only "hd" is
   cache-eligible: GHD witnesses would fail the HD replay check on every
   hit and poison the hit rate. *)
let solve_hd_level ?cache ?sweep ~hits ~misses ~deadline h ~k =
  match cache with
  | None -> Detk.solve ~deadline ?sweep h ~k
  | Some c -> (
      match Result_cache.find c h ~meth:"hd" ~k with
      | Some (Result_cache.Yes d) ->
          incr hits;
          Detk.Decomposition d
      | Some Result_cache.No ->
          incr hits;
          Detk.No_decomposition
      | None ->
          incr misses;
          let o = Detk.solve ~deadline ?sweep h ~k in
          (match o with
          | Detk.Decomposition d ->
              Result_cache.store c h ~meth:"hd" ~k (Result_cache.Yes d)
          | Detk.No_decomposition ->
              Result_cache.store c h ~meth:"hd" ~k Result_cache.No
          | Detk.Timeout -> ());
          o)

let ghd_answer (a : Detk.outcome) ~exact ~k ~alg h =
  match a with
  | Detk.Decomposition d -> yes h d ~k ~alg
  | Detk.No_decomposition ->
      (* An inexact "no" (truncated subedge set) proves nothing. *)
      if exact then no ~k ~alg else timeout ~k ~alg
  | Detk.Timeout -> timeout ~k ~alg

(* Runs in the solving process (in-process or forked child); wraps the
   whole solve in [local_delta] so cache hits/misses and search counters
   recorded here travel back to the daemon with the result. *)
let solve_once ~cfg ~meth ~k ~budget h () =
  let hits = ref 0 and misses = ref 0 in
  let r, delta =
    Kit.Metrics.local_delta (fun () ->
        match (meth, k) with
        | "hd", Some k -> (
            let deadline = fresh_deadline budget in
            match
              solve_hd_level ?cache:cfg.cache ~hits ~misses ~deadline h ~k
            with
            | Detk.Decomposition d -> yes h d ~k ~alg:"hd"
            | Detk.No_decomposition -> no ~k ~alg:"hd"
            | Detk.Timeout -> timeout ~k ~alg:"hd")
        | "hd", None ->
            (* Width ladder: one shared budget, one shared sweep table
               (failure proofs accumulate across levels). *)
            let deadline = fresh_deadline budget in
            let sweep = Detk.sweep_cache () in
            let rec go lvl =
              if lvl > cfg.max_k then no ~k:cfg.max_k ~alg:"hd"
              else
                match
                  solve_hd_level ?cache:cfg.cache ~hits ~misses ~sweep
                    ~deadline h ~k:lvl
                with
                | Detk.Decomposition d -> yes h d ~k:lvl ~alg:"hd"
                | Detk.No_decomposition -> go (lvl + 1)
                | Detk.Timeout -> timeout ~k:lvl ~alg:"hd"
            in
            go 1
        | "balsep", Some k ->
            let a = Ghd.Bal_sep.solve ~deadline:(fresh_deadline budget) h ~k in
            ghd_answer a.Ghd.Bal_sep.outcome ~exact:a.Ghd.Bal_sep.exact ~k
              ~alg:"balsep" h
        | "parbalsep", Some k ->
            (* Intra-parallel BalSep. Domains spawned in the daemon
               process would permanently break [Unix.fork], so the
               in-process path pins jobs = 1 (Par_bal_sep spawns no
               domains then); under isolation this already runs in a
               forked child, which is free to use the full pool width. *)
            let jobs = if cfg.isolate then Kit.Pool.default_jobs () else 1 in
            let a =
              Ghd.Par_bal_sep.solve ~jobs ~deadline:(fresh_deadline budget) h
                ~k
            in
            ghd_answer a.Ghd.Bal_sep.outcome ~exact:a.Ghd.Bal_sep.exact ~k
              ~alg:"parbalsep" h
        | "localbip", Some k ->
            let a = Ghd.Local_bip.solve ~deadline:(fresh_deadline budget) h ~k in
            ghd_answer a.Ghd.Local_bip.outcome ~exact:a.Ghd.Local_bip.exact ~k
              ~alg:"localbip" h
        | "globalbip", Some k ->
            let a = Ghd.Global_bip.solve ~deadline:(fresh_deadline budget) h ~k in
            ghd_answer a.Ghd.Global_bip.outcome ~exact:a.Ghd.Global_bip.exact ~k
              ~alg:"globalbip" h
        | "portfolio", Some k -> (
            (* The sequential portfolio: [Portfolio.race] spawns domains,
               which would permanently break [Unix.fork] in this
               process — never call it from the daemon. *)
            match
              Ghd.Portfolio.check
                ~budget:(fun () -> fresh_deadline budget)
                h ~k
            with
            | Ghd.Portfolio.Yes (d, alg) ->
                yes h d ~k ~alg:(Ghd.Portfolio.algorithm_name alg)
            | Ghd.Portfolio.No alg ->
                no ~k ~alg:(Ghd.Portfolio.algorithm_name alg)
            | Ghd.Portfolio.All_timeout -> timeout ~k ~alg:"portfolio")
        | _ -> invalid_arg "method requires k")
  in
  let s_cache =
    if cfg.cache = None || meth <> "hd" then "off"
    else if !hits > 0 && !misses = 0 then "hit"
    else "miss"
  in
  { r with s_cache; s_stats = delta }

let wall_of_budget cfg = function
  | Seconds s -> s +. 1.0
  | Fuel _ -> cfg.max_timeout +. 1.0

let run_solve cfg ~meth ~k ~budget h =
  let task = solve_once ~cfg ~meth ~k ~budget h in
  (* Worker-kill injection is decided here, in the daemon, because under
     isolation each forked worker carries a fresh copy of the Fault hit
     counters — a probabilistic clause evaluated in the child would see
     hit 1 on every request. The global counter in the parent keeps the
     firing sequence deterministic across requests and retries. *)
  let kill_worker =
    match Kit.Fault.hit "serve.worker" with
    | () -> false
    | exception Kit.Fault.Injected _ -> true
  in
  if cfg.isolate then begin
    let task =
      if kill_worker then fun () ->
        (* die like a real crashed worker: Proc's reaper classifies the
           signal death, not a marshalled exception *)
        Unix.kill (Unix.getpid ()) Sys.sigabrt;
        task ()
      else task
    in
    let outcomes =
      Kit.Proc.outcomes ~jobs:1 ?mem_mb:cfg.mem_mb
        ~wall:(wall_of_budget cfg budget)
        (fun () -> task ())
        [| () |]
    in
    outcomes.(0)
  end
  else if kill_worker then
    Kit.Outcome.Crash "injected worker kill at serve.worker"
  else
    (* In-process: the Guard soft memory alarm is process-global and
       would misattribute another thread's allocations to this request,
       so it is disabled; hard memory limits need [isolate]. *)
    Kit.Guard.run ~mem_mb:0 task

(* The subsystem a solve exercises, for breaker accounting. *)
let subsystem_of cfg = if cfg.isolate then "isolation" else "solver"

(* Self-healing: a crashed worker is restarted (fresh fork next attempt)
   after a jittered backoff, up to the supervisor's retry budget; every
   restart is counted and charged to the subsystem's breaker. *)
let run_solve_supervised cfg ~meth ~k ~budget h =
  let sup = cfg.supervisor in
  let br = Serve.Supervisor.breaker sup (subsystem_of cfg) in
  let rec attempt n =
    match run_solve cfg ~meth ~k ~budget h with
    | Kit.Outcome.Crash _ when n < Serve.Supervisor.retries sup ->
        Serve.Supervisor.restarted sup;
        Serve.Breaker.failure br;
        Unix.sleepf (Serve.Supervisor.backoff sup ~attempt:n);
        attempt (n + 1)
    | o -> o
  in
  attempt 0

(* ------------------------------------------------------------------ *)
(* HTTP                                                                *)
(* ------------------------------------------------------------------ *)

let json_response ?(headers = []) status (j : Kit.Json.t) =
  Serve.Http.response ~headers status (Kit.Json.to_string j)

let err status msg =
  Serve.Http.response status (Serve.Http.error_body status msg)

(* 422 body: positions as data for tools, the caret report for humans. *)
let payload_err = function
  | Unsupported mt ->
      err 415 ("unsupported content type: " ^ mt)
  | Invalid { format; source; diags } ->
      json_response 422
        (Kit.Json.Obj
           [
             ("error", Kit.Json.String "parse failure");
             ("format", Kit.Json.String format);
             ("diagnostics", Kit.Diag.all_to_json ~source diags);
             ( "rendered",
               Kit.Json.String (Kit.Diag.render_all ~source diags) );
           ])

let methods =
  [ "hd"; "balsep"; "parbalsep"; "localbip"; "globalbip"; "portfolio" ]

exception Bad_param of string

let parse_params cfg req =
  let meth =
    match Serve.Http.param req "method" with
    | None -> "hd"
    | Some m ->
        let m = String.lowercase_ascii m in
        if List.mem m methods then m
        else
          raise
            (Bad_param
               (Printf.sprintf "unknown method %S (expected one of %s)" m
                  (String.concat ", " methods)))
  in
  let k =
    match Serve.Http.param req "k" with
    | None -> None
    | Some s -> (
        match int_of_string_opt s with
        | Some k when k >= 1 -> Some k
        | _ -> raise (Bad_param "k must be a positive integer"))
  in
  if meth <> "hd" && k = None then
    raise (Bad_param ("method " ^ meth ^ " requires k"));
  let budget =
    match Serve.Http.param req "fuel" with
    | Some s -> (
        match int_of_string_opt s with
        | Some f when f >= 1 -> Fuel f
        | _ -> raise (Bad_param "fuel must be a positive integer"))
    | None -> (
        match Serve.Http.param req "timeout" with
        | None -> Seconds cfg.default_timeout
        | Some s -> (
            match float_of_string_opt s with
            | Some t when t > 0. -> Seconds (Float.min t cfg.max_timeout)
            | _ -> raise (Bad_param "timeout must be a positive number")))
  in
  (meth, k, budget)

(* The 200 body for a completed solve. One function for both the normal
   and the degraded (breaker-open, cache-only) path, so a degraded hit
   is byte-identical to the answer the solver would have produced. *)
let solved_json h ~meth (s : solved) =
  Kit.Json.Obj
    [ ("fingerprint", Kit.Json.String (Hg.Hypergraph.fingerprint h));
      ("method", Kit.Json.String meth);
      ("algorithm", Kit.Json.String s.s_algorithm);
      ("k", Kit.Json.Int s.s_k);
      ("verdict", Kit.Json.String s.s_verdict);
      ("width",
       if s.s_width >= 0 then Kit.Json.Int s.s_width else Kit.Json.Null);
      ("decomposition",
       if s.s_decomp = "" then Kit.Json.Null
       else Kit.Json.String s.s_decomp) ]

let retry_after_header ra =
  ("Retry-After", string_of_int (max 1 (int_of_float (Float.ceil ra))))

let m_degraded = Kit.Metrics.counter "serve.degraded_hits"

(* Breaker open: the solver subsystem is not to be trusted right now,
   but a cached definitive verdict is still good — serve it. Otherwise
   admit we are degraded: 503 with the breaker's honest probe schedule
   as Retry-After. *)
let degraded cfg h ~meth ~k ~retry_after:ra =
  let cached =
    match cfg.cache with
    | Some c when meth = "hd" -> (
        match k with
        | Some k -> (
            match Result_cache.find c h ~meth:"hd" ~k with
            | Some (Result_cache.Yes d) -> Some (yes h d ~k ~alg:"hd")
            | Some Result_cache.No -> Some (no ~k ~alg:"hd")
            | None -> None)
        | None ->
            (* the width ladder is answerable from cache only if every
               level up to the first Yes is cached *)
            let rec go lvl =
              if lvl > cfg.max_k then Some (no ~k:cfg.max_k ~alg:"hd")
              else
                match Result_cache.find c h ~meth:"hd" ~k:lvl with
                | Some (Result_cache.Yes d) -> Some (yes h d ~k:lvl ~alg:"hd")
                | Some Result_cache.No -> go (lvl + 1)
                | None -> None
            in
            go 1)
    | _ -> None
  in
  match cached with
  | Some s ->
      Kit.Metrics.incr m_degraded;
      let s = { s with s_cache = "hit" } in
      json_response 200
        ~headers:
          [ ("X-HB-Cache", s.s_cache);
            ("X-HB-Seconds", "0.000000");
            ("X-HB-Degraded", "cache") ]
        (solved_json h ~meth s)
  | None ->
      Serve.Http.response
        ~headers:[ retry_after_header ra; ("X-HB-Degraded", "breaker-open") ]
        503
        (Serve.Http.error_body 503
           "decomposition temporarily unavailable (circuit open)")

(* [X-HB-Deadline: seconds-remaining] — set by [Serve.Client.request_retry].
   An already-expired deadline is answered 504 without solving; otherwise
   the advertised remainder caps the solve budget, so the server never
   burns a worker on an answer the client has stopped waiting for. *)
let client_deadline req =
  match Serve.Http.header req "x-hb-deadline" with
  | None -> Ok None
  | Some v -> (
      match float_of_string_opt (String.trim v) with
      | Some d when d > 0. -> Ok (Some d)
      | Some _ -> Error ()
      | None -> Ok None (* unparseable: ignore, header is advisory *))

let decompose cfg req =
  match parse_payload req with
  | Error pe -> payload_err pe
  | Ok h -> (
      match parse_params cfg req with
      | exception Bad_param msg -> err 400 msg
      | meth, k, budget -> (
          match client_deadline req with
          | Error () -> err 504 "client deadline already expired"
          | Ok dl -> (
              let budget =
                match (budget, dl) with
                | Seconds s, Some d -> Seconds (Float.min s d)
                | b, _ -> b
              in
              let br =
                Serve.Supervisor.breaker cfg.supervisor (subsystem_of cfg)
              in
              match Serve.Breaker.acquire br with
              | `Reject ra -> degraded cfg h ~meth ~k ~retry_after:ra
              | `Proceed | `Probe -> (
                  let t0 = Unix.gettimeofday () in
                  match run_solve_supervised cfg ~meth ~k ~budget h with
                  | Kit.Outcome.Ok s ->
                      Serve.Breaker.success br;
                      (* In-process solves recorded straight into this
                         domain's store; only a forked worker's delta
                         needs replaying. *)
                      if cfg.isolate then Kit.Metrics.absorb s.s_stats;
                      let seconds = Unix.gettimeofday () -. t0 in
                      json_response 200
                        ~headers:
                          [ ("X-HB-Cache", s.s_cache);
                            ("X-HB-Seconds", Printf.sprintf "%.6f" seconds) ]
                        (solved_json h ~meth s)
                  | Kit.Outcome.Timeout ->
                      (* The watchdog killed the worker: the budget is
                         spent and the level is whatever the client asked
                         for. Containment doing its job is subsystem
                         health, not failure. *)
                      Serve.Breaker.success br;
                      let seconds = Unix.gettimeofday () -. t0 in
                      json_response 200
                        ~headers:
                          [ ("X-HB-Seconds", Printf.sprintf "%.6f" seconds) ]
                        (Kit.Json.Obj
                           [ ("fingerprint",
                              Kit.Json.String (Hg.Hypergraph.fingerprint h));
                             ("method", Kit.Json.String meth);
                             ("algorithm", Kit.Json.String meth);
                             ("k",
                              match k with
                              | Some k -> Kit.Json.Int k
                              | None -> Kit.Json.Null);
                             ("verdict", Kit.Json.String "timeout");
                             ("width", Kit.Json.Null);
                             ("decomposition", Kit.Json.Null) ])
                  | Kit.Outcome.Out_of_memory ->
                      Serve.Breaker.success br;
                      Serve.Http.response
                        ~headers:[ ("Retry-After", "1") ]
                        503
                        (Serve.Http.error_body 503
                           "solver exceeded its memory budget")
                  | Kit.Outcome.Stack_overflow ->
                      Serve.Breaker.success br;
                      err 500 "solver stack overflow"
                  | Kit.Outcome.Crash msg ->
                      (* Out of restart budget: charge the breaker and
                         answer with its honest probe schedule. *)
                      Serve.Breaker.failure br;
                      Serve.Http.response
                        ~headers:
                          [ retry_after_header (Serve.Breaker.retry_after br) ]
                        503
                        (Serve.Http.error_body 503
                           ("solver crashed: "
                           ^ (match String.index_opt msg '\n' with
                             | Some i -> String.sub msg 0 i
                             | None -> msg)))))))

let usage =
  Kit.Json.to_string
    (Kit.Json.Obj
       [ ("service", Kit.Json.String "hyperbenchd");
         ("endpoints",
          Kit.Json.Obj
            [ ("GET /healthz", Kit.Json.String "liveness probe");
              ("GET /metrics", Kit.Json.String "Prometheus text format");
              ("POST /decompose",
               Kit.Json.String
                 "body: hypergraph (Content-Type selects HG text, binary, \
                  SQL or XCSP3); query: k, method \
                  (hd|balsep|parbalsep|localbip|globalbip|portfolio), \
                  timeout (seconds), fuel") ]) ])

let handler cfg =
  let router =
    Serve.Router.create
      [ ("GET", "/", fun _ -> Serve.Http.response 200 usage);
        ("GET", "/healthz",
         fun _ ->
           (* Liveness plus supervision detail: ok is false only while
              some subsystem's breaker is open (the status stays 200 —
              the daemon itself is alive and still answering). *)
           let subs = Serve.Supervisor.subsystems cfg.supervisor in
           let ok =
             List.for_all (fun (_, st) -> st <> Serve.Breaker.Open) subs
           in
           Serve.Http.response 200
             (Kit.Json.to_string
                (Kit.Json.Obj
                   [ ("ok", Kit.Json.Bool ok);
                     ("subsystems",
                      Kit.Json.Obj
                        (List.map
                           (fun (n, st) ->
                             (n, Kit.Json.String (Serve.Breaker.state_name st)))
                           subs)) ])));
        ("GET", "/metrics",
         fun _ ->
           Serve.Http.response ~content_type:"text/plain; version=0.0.4"
             200
             (Serve.Prometheus.render (Kit.Metrics.snapshot ())));
        ("POST", "/decompose", decompose cfg) ]
  in
  fun req -> Serve.Router.dispatch router req
