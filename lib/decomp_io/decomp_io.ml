module Bitset = Kit.Bitset
module Hypergraph = Hg.Hypergraph

(* Names are emitted bare only when no character could collide with the
   format's own punctuation (',', '{', '}', '[', ']', '~', '"', spaces);
   anything else is '"'-quoted with '\' escaping '"' and '\' — the same
   convention as [Hypergraph.pp] — so to_text/of_text round-trips
   arbitrary names exactly. The bare alphabet here is stricter than the
   hypergraph format's (no '[' / ']'), because this format uses brackets
   as delimiters. *)
let is_bare_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = ':' || c = '.' || c = '\''

let quote_name name =
  if name <> "" && String.for_all is_bare_char name then name
  else begin
    let buf = Buffer.create (String.length name + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' | '\\' ->
            Buffer.add_char buf '\\';
            Buffer.add_char buf c
        (* The format is line-oriented (indentation = tree depth), so a
           raw newline inside a quoted name would tear the node line;
           control characters are escaped, unlike in [Hypergraph.pp]
           whose lexer spans lines. *)
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c -> Buffer.add_char buf c)
      name;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let to_text h (d : Decomp.t) =
  let buf = Buffer.create 256 in
  let rec go depth (u : Decomp.node) =
    Buffer.add_string buf (String.make (2 * depth) ' ');
    let bag =
      Bitset.to_list u.Decomp.bag
      |> List.map (fun v -> quote_name (Hypergraph.vertex_name h v))
      |> String.concat ", "
    in
    let cover_elt (c : Decomp.cover_elt) =
      match c.Decomp.source with
      | Decomp.Original e -> quote_name (Hypergraph.edge_name h e)
      | Decomp.Subedge e ->
          Printf.sprintf "%s~{%s}"
            (quote_name (Hypergraph.edge_name h e))
            (Bitset.to_list c.Decomp.vertices
            |> List.map (fun v -> quote_name (Hypergraph.vertex_name h v))
            |> String.concat ",")
      | Decomp.Special -> "__special"
    in
    Buffer.add_string buf
      (Printf.sprintf "{%s} [%s]\n" bag
         (String.concat ", " (List.map cover_elt u.Decomp.cover)));
    List.iter (go (depth + 1)) u.Decomp.children
  in
  go 0 d;
  Buffer.contents buf

(* --- parsing ------------------------------------------------------------- *)

(* One node line is "{bag} [cover]". A tiny cursor-based lexer handles
   quoted names (whose content may contain any delimiter); bare names
   are read up to the context's terminator characters and trimmed, which
   keeps files written before quoting existed parsing as they did. *)
let parse_line h line =
  let line_body = String.trim line in
  let len = String.length line_body in
  let pos = ref 0 in
  let fail msg = Error (Printf.sprintf "%s in node line: %s" msg line_body) in
  let peek () = if !pos < len then Some line_body.[!pos] else None in
  let skip_ws () =
    while !pos < len && (line_body.[!pos] = ' ' || line_body.[!pos] = '\t') do
      incr pos
    done
  in
  let expect c =
    if peek () = Some c then begin
      incr pos;
      Ok ()
    end
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let ( let* ) r f = match r with Error _ as e -> e | Ok v -> f v in
  (* A quoted string, or a bare run up to (not including) any char of
     [terms], right-trimmed. [Ok None] when the name is empty. *)
  let name_token terms =
    skip_ws ();
    if peek () = Some '"' then begin
      incr pos;
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= len then fail "unterminated quoted name"
        else
          match line_body.[!pos] with
          | '"' ->
              incr pos;
              Ok (Some (Buffer.contents buf))
          | '\\' when !pos + 1 < len ->
              Buffer.add_char buf
                (match line_body.[!pos + 1] with
                | 'n' -> '\n'
                | 'r' -> '\r'
                | 't' -> '\t'
                | c -> c);
              pos := !pos + 2;
              go ()
          | '\\' -> fail "unterminated quoted name"
          | c ->
              Buffer.add_char buf c;
              incr pos;
              go ()
      in
      go ()
    end
    else begin
      let start = !pos in
      while !pos < len && not (String.contains terms line_body.[!pos]) do
        incr pos
      done;
      match String.trim (String.sub line_body start (!pos - start)) with
      | "" -> Ok None
      | name -> Ok (Some name)
    end
  in
  (* Comma-separated names until the closing character, which is left
     unconsumed. *)
  let name_list terms close =
    let rec go acc =
      skip_ws ();
      if peek () = Some close && acc = [] then Ok []
      else
        let* name = name_token terms in
        match name with
        | None -> fail "expected a name"
        | Some name -> (
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                go (name :: acc)
            | Some c when c = close -> Ok (List.rev (name :: acc))
            | _ -> fail (Printf.sprintf "expected ',' or '%c'" close))
    in
    go []
  in
  let vertex name =
    match
      Array.to_seq h.Hypergraph.vertex_names
      |> Seq.mapi (fun i n -> (i, n))
      |> Seq.find (fun (_, n) -> n = name)
    with
    | Some (i, _) -> Ok i
    | None -> Error (Printf.sprintf "unknown vertex %s" name)
  in
  let edge name =
    match
      Array.to_seq h.Hypergraph.edge_names
      |> Seq.mapi (fun i n -> (i, n))
      |> Seq.find (fun (_, n) -> n = name)
    with
    | Some (i, _) -> Ok i
    | None -> Error (Printf.sprintf "unknown edge %s" name)
  in
  let rec map_all f = function
    | [] -> Ok []
    | x :: rest ->
        let* y = f x in
        let* ys = map_all f rest in
        Ok (y :: ys)
  in
  let cover_elt () =
    let start = !pos in
    let* name = name_token ",]~" in
    match name with
    | None -> fail "expected a cover edge name"
    | Some name ->
        skip_ws ();
        if peek () = Some '~' then begin
          incr pos;
          let* () = expect '{' in
          let* inner = name_list ",}" '}' in
          let* () = expect '}' in
          let label =
            String.trim (String.sub line_body start (!pos - start))
          in
          let* e = edge name in
          let* vs = map_all vertex inner in
          Ok
            {
              Decomp.label;
              vertices = Bitset.of_list h.Hypergraph.n_vertices vs;
              source = Decomp.Subedge e;
            }
        end
        else
          let* e = edge name in
          Ok
            {
              Decomp.label = name;
              vertices = Hypergraph.edge h e;
              source = Decomp.Original e;
            }
  in
  let* () = expect '{' in
  let* bag_names = name_list ",}" '}' in
  let* () = expect '}' in
  skip_ws ();
  let* () = expect '[' in
  let* cover =
    let rec go acc =
      skip_ws ();
      if peek () = Some ']' && acc = [] then Ok []
      else
        let* c = cover_elt () in
        skip_ws ();
        match peek () with
        | Some ',' ->
            incr pos;
            go (c :: acc)
        | Some ']' -> Ok (List.rev (c :: acc))
        | _ -> fail "expected ',' or ']'"
    in
    go []
  in
  let* () = expect ']' in
  skip_ws ();
  if !pos <> len then fail "trailing characters"
  else
    let* bag_ids = map_all vertex bag_names in
    Ok (Bitset.of_list h.Hypergraph.n_vertices bag_ids, cover)

let indent_of line =
  let i = ref 0 in
  while !i < String.length line && line.[!i] = ' ' do incr i done;
  !i / 2

let of_text h text =
  let lines =
    String.split_on_char '\n' text |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> Error "empty decomposition"
  | _ -> (
      (* Parse into (depth, bag, cover) triples, then fold into a tree via
         a stack of (depth, pending children) frames. *)
      let rec parse_all acc = function
        | [] -> Ok (List.rev acc)
        | line :: rest -> (
            match parse_line h line with
            | Error _ as e -> e
            | Ok (bag, cover) -> parse_all ((indent_of line, bag, cover) :: acc) rest)
      in
      match parse_all [] lines with
      | Error m -> Error m
      | Ok [] -> Error "empty decomposition"
      | Ok ((d0, _, _) :: _) when d0 <> 0 -> Error "first node must be unindented"
      | Ok triples ->
          (* Build recursively: node at depth d owns following nodes of
             depth > d until one of depth <= d appears. *)
          let rec build depth = function
            | (d, bag, cover) :: rest when d = depth ->
                let children, rest' = build_children (depth + 1) rest in
                (Some ({ Decomp.bag; cover; children } : Decomp.node), rest')
            | rest -> (None, rest)
          and build_children depth rest =
            match build depth rest with
            | Some node, rest' ->
                let siblings, rest'' = build_children depth rest' in
                (node :: siblings, rest'')
            | None, rest' -> ([], rest')
          in
          (match build 0 triples with
          | Some root, [] -> Ok root
          | Some _, _ :: _ -> Error "multiple roots or bad indentation"
          | None, _ -> Error "no root node"))
