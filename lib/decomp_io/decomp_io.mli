(** Text serialisation of decompositions, for the CLI pipeline
    (decompose on one machine, validate or evaluate elsewhere — the
    workbench role the paper's web tool plays).

    Format: one node per line, depth given by leading indentation (two
    spaces per level), bag then cover:

    {v
    {x, y, z} [r, s]
      {y, w} [t]
    v}

    Cover labels must name edges of the hypergraph the file is later
    validated against; subedges are written as [name~{a,b}]. Names that
    contain the format's own punctuation (or any non-identifier
    character) are emitted as ["..."] with [\\]-escaped ['"'] and
    ['\\'] — the {!Hg.Hypergraph.pp} convention — so the text
    round-trips arbitrary names exactly (the result cache replays
    witnesses through this format, whatever the instance names are). *)

val to_text : Hg.Hypergraph.t -> Decomp.t -> string

val of_text : Hg.Hypergraph.t -> string -> (Decomp.t, string) result
(** Re-attaches vertex and edge names to ids of the given hypergraph;
    unknown names are errors. The result is not implicitly validated —
    run {!Decomp.check_ghd} / {!Decomp.check_hd} as needed. *)
