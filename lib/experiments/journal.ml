type t = { oc : out_channel; lock : Mutex.t; mutable closed : bool }

let m_appended = Kit.Metrics.counter "journal.appended"
let m_corrupt = Kit.Metrics.counter "journal.corrupt"
let m_fsync_errors = Kit.Metrics.counter "journal.fsync_errors"

let fsync oc =
  flush oc;
  (* Not every filesystem supports fsync (e.g. some tmpfs setups); losing
     durability there is acceptable, losing the campaign is not — but a
     refused fsync means the tail is not crash-durable, so count it where
     --stats can surface it instead of swallowing it without a trace. *)
  try Unix.fsync (Unix.descr_of_out_channel oc)
  with Unix.Unix_error _ -> Kit.Metrics.incr m_fsync_errors

let start ~path ~header ~entries =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (try
     output_string oc (Kit.Json.to_string header);
     output_char oc '\n';
     List.iter
       (fun e ->
         output_string oc (Kit.Json.to_string e);
         output_char oc '\n')
       entries;
     fsync oc;
     close_out oc
   with e ->
     close_out_noerr oc;
     raise e);
  Sys.rename tmp path;
  let oc = open_out_gen [ Open_wronly; Open_append ] 0o644 path in
  { oc; lock = Mutex.create (); closed = false }

let append t entry =
  let line = Kit.Json.to_string entry in
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      output_string t.oc line;
      output_char t.oc '\n';
      flush t.oc);
  Kit.Metrics.incr m_appended

let close t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      if not t.closed then begin
        t.closed <- true;
        fsync t.oc;
        close_out_noerr t.oc
      end)

type contents = {
  header : Kit.Json.t option;
  entries : Kit.Json.t list;
  corrupt : int;
}

let read ~path =
  match open_in_bin path with
  | exception Sys_error m -> Error m
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec lines acc =
            match input_line ic with
            | l -> lines (l :: acc)
            | exception End_of_file -> List.rev acc
          in
          let rec go entries corrupt = function
            | [] -> (List.rev entries, corrupt)
            | line :: rest -> (
                if String.trim line = "" then go entries corrupt rest
                else
                  match Kit.Json.of_string line with
                  | Error _ ->
                      Kit.Metrics.incr m_corrupt;
                      go entries (corrupt + 1) rest
                  | Ok v -> go (v :: entries) corrupt rest)
          in
          (* Only the literal first line can be the header. The previous
             behaviour — promote the first line that happens to parse —
             silently turned a campaign entry into the header whenever
             line 1 was corrupt, so a resume would then "validate" the
             run parameters against an entry and carry on against the
             wrong configuration. A journal that has content but no
             parseable line 1 now reads back as [header = None] (plus a
             corrupt tick), which resume refuses. *)
          match lines [] with
          | [] -> Ok { header = None; entries = []; corrupt = 0 }
          | first :: rest -> (
              match Kit.Json.of_string first with
              | Ok header ->
                  let entries, corrupt = go [] 0 rest in
                  Ok { header = Some header; entries; corrupt }
              | Error _ ->
                  Kit.Metrics.incr m_corrupt;
                  let entries, corrupt = go [] 1 rest in
                  Ok { header = None; entries; corrupt }))
