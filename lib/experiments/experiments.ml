module Analysis = Benchlib.Analysis
module Instance = Benchlib.Instance
module Repository = Benchlib.Repository
module Group = Benchlib.Group
module Stats = Benchlib.Stats

type context = {
  instances : Instance.t list;
  records : Analysis.record list;
  ghd : Analysis.ghd_record list;
  frac : Analysis.frac_record list;
  stats : Kit.Metrics.snapshot;
}

(* With intra-instance parallelism enabled, the ghd pass hands each
   parallel member the domains the pool would otherwise leave idle: when
   the record shard is narrower than the pool, the leftover width goes to
   Par_bal_sep; when there are at least as many records as domains, every
   domain is busy with its own instance and members stay sequential. *)
let intra_width ~intra ?jobs n_records =
  if not intra then 1
  else
    let pool =
      match jobs with Some j -> j | None -> Kit.Pool.default_jobs ()
    in
    max 1 (pool / max 1 n_records)

let prepare ?(seed = 2019) ?(scale = 1.0) ?(budget_seconds = 1.0) ?budget
    ?(max_k = 8) ?jobs ?(intra = false) ?cache () =
  let budget =
    match budget with
    | Some b -> b
    | None -> fun () -> Kit.Deadline.of_seconds budget_seconds
  in
  let instances = Repository.build ~seed ~scale () in
  let records = Analysis.analyze ~budget ~max_k ?jobs ?cache instances in
  let intra_jobs = intra_width ~intra ?jobs (List.length records) in
  let ghd = Analysis.ghd_comparison ~budget ?jobs ~intra_jobs records in
  let frac = Analysis.fractional ~budget ?jobs records in
  { instances; records; ghd; frac; stats = Kit.Metrics.snapshot () }

(* Solver seconds actually measured by the analysis pass: the sequential-
   equivalent cost, used by bench/main.ml to report the pool speedup. *)
let solver_seconds ctx =
  let hw =
    List.fold_left
      (fun acc r ->
        List.fold_left
          (fun a (run : Analysis.hw_run) -> a +. run.seconds)
          acc r.Analysis.hw_runs)
      0.0 ctx.records
  in
  List.fold_left
    (fun acc g ->
      List.fold_left
        (fun a (r : Analysis.ghd_run) -> a +. r.seconds)
        acc g.Analysis.runs)
    hw ctx.ghd

let group_records ctx g =
  List.filter (fun r -> r.Analysis.instance.Instance.group = g) ctx.records

(* --- Table 1 ---------------------------------------------------------------- *)

let is_cyclic (r : Analysis.record) =
  (* hw >= 2: the k = 1 check answered "no" (or a higher exact hw is
     known). *)
  match r.Analysis.hw with
  | Analysis.Exact k | Analysis.Upper k -> k >= 2
  | Analysis.Open_above _ -> (
      match r.Analysis.hw_runs with
      | { k = 1; outcome = `No; _ } :: _ -> true
      | _ -> false)

let table1 ctx =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "Table 1: Overview of benchmark instances\n";
  Buffer.add_string buf
    (Printf.sprintf "%-18s %-16s %14s %10s\n" "Benchmark" "Group" "No. instances"
       "hw >= 2");
  let total = ref 0 and total_cyclic = ref 0 in
  List.iter
    (fun (source, insts) ->
      let recs =
        List.filter
          (fun r -> r.Analysis.instance.Instance.source = source)
          ctx.records
      in
      let cyclic = List.length (List.filter is_cyclic recs) in
      total := !total + List.length insts;
      total_cyclic := !total_cyclic + cyclic;
      Buffer.add_string buf
        (Printf.sprintf "%-18s %-16s %14d %10d\n" source
           (Group.name (List.hd insts).Instance.group)
           (List.length insts) cyclic))
    (Repository.sources ctx.instances);
  Buffer.add_string buf
    (Printf.sprintf "%-18s %-16s %14d %10d\n" "Total" "" !total !total_cyclic);
  Buffer.contents buf

(* --- Table 2 ---------------------------------------------------------------- *)

let table2 ctx =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "Table 2: Properties of all benchmark instances\n";
  let metrics : (string * (Analysis.record -> int option)) list =
    [
      ("Deg", fun r -> Some r.Analysis.profile.Hg.Properties.degree);
      ("BIP", fun r -> Some r.Analysis.profile.Hg.Properties.bip);
      ("3-BMIP", fun r -> Some r.Analysis.profile.Hg.Properties.bmip3);
      ("4-BMIP", fun r -> Some r.Analysis.profile.Hg.Properties.bmip4);
      ("VC-dim", fun r -> r.Analysis.profile.Hg.Properties.vc_dim);
    ]
  in
  List.iter
    (fun g ->
      let recs = group_records ctx g in
      if recs <> [] then begin
        Buffer.add_string buf (Printf.sprintf "\n%s (%d instances)\n" (Group.name g) (List.length recs));
        Buffer.add_string buf
          (Printf.sprintf "%-4s %8s %8s %8s %8s %8s\n" "i" "Deg" "BIP" "3-BMIP"
             "4-BMIP" "VC-dim");
        let hists =
          List.map (fun (_, m) -> Stats.property_histogram m recs) metrics
        in
        let label = [| "0"; "1"; "2"; "3"; "4"; "5"; ">5" |] in
        for i = 0 to 6 do
          Buffer.add_string buf
            (Printf.sprintf "%-4s %8d %8d %8d %8d %8d\n" label.(i)
               (List.nth hists 0).(i) (List.nth hists 1).(i)
               (List.nth hists 2).(i) (List.nth hists 3).(i)
               (List.nth hists 4).(i))
        done;
        (* The edge-clique-cover condition discussed in section 2: how many
           instances have more variables than constraints. *)
        let n_gt_m =
          List.length
            (List.filter
               (fun (r : Analysis.record) ->
                 Hg.Properties.has_more_vertices_than_edges
                   r.Analysis.instance.Instance.hg)
               recs)
        in
        Buffer.add_string buf
          (Printf.sprintf "n > m (edge-clique-cover applicable): %d of %d\n"
             n_gt_m (List.length recs))
      end)
    Group.all;
  Buffer.contents buf

(* --- Figure 3 ---------------------------------------------------------------- *)

let pct part total =
  if total = 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int total

let figure3 ctx =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "Figure 3: Hypergraph sizes (% of group)\n";
  let render title buckets_of labels =
    Buffer.add_string buf (Printf.sprintf "\n%s\n%-16s" title "");
    Array.iter (fun l -> Buffer.add_string buf (Printf.sprintf "%8s" l)) labels;
    Buffer.add_char buf '\n';
    List.iter
      (fun g ->
        let recs = group_records ctx g in
        if recs <> [] then begin
          let b = buckets_of recs in
          let total = Array.fold_left ( + ) 0 b in
          Buffer.add_string buf (Printf.sprintf "%-16s" (Group.name g));
          Array.iter
            (fun v -> Buffer.add_string buf (Printf.sprintf "%7.1f%%" (pct v total)))
            b;
          Buffer.add_char buf '\n'
        end)
      Group.all
  in
  let size_labels = [| "1-10"; "11-20"; "21-30"; "31-40"; "41-50"; ">50" |] in
  render "Vertices"
    (Stats.size_buckets (fun r -> r.Analysis.profile.Hg.Properties.vertices))
    size_labels;
  render "Edges"
    (Stats.size_buckets (fun r -> r.Analysis.profile.Hg.Properties.edges))
    size_labels;
  render "Arity" Stats.arity_buckets [| "1-5"; "6-10"; "11-15"; "16-20"; ">20" |];
  Buffer.contents buf

(* --- Figure 4 ---------------------------------------------------------------- *)

let figure4 ctx =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    "Figure 4: HW analysis per group and k (avg runtimes in s)\n";
  List.iter
    (fun g ->
      let recs = group_records ctx g in
      if recs <> [] then begin
        Buffer.add_string buf (Printf.sprintf "\n%s\n" (Group.name g));
        Buffer.add_string buf
          (Printf.sprintf "%-4s %12s %12s %9s\n" "k" "yes (avg s)" "no (avg s)"
             "timeout");
        let max_k =
          List.fold_left
            (fun m r ->
              List.fold_left (fun m (run : Analysis.hw_run) -> Stdlib.max m run.k) m
                r.Analysis.hw_runs)
            1 recs
        in
        for k = 1 to max_k do
          let outcomes =
            List.filter_map
              (fun r ->
                List.find_opt (fun (run : Analysis.hw_run) -> run.k = k) r.Analysis.hw_runs)
              recs
          in
          if outcomes <> [] then begin
            let of_kind kind =
              List.filter (fun (run : Analysis.hw_run) -> run.outcome = kind) outcomes
            in
            let avg runs =
              match runs with
              | [] -> 0.0
              | _ ->
                  List.fold_left (fun a (r : Analysis.hw_run) -> a +. r.seconds) 0.0 runs
                  /. float_of_int (List.length runs)
            in
            let yes = of_kind `Yes and no = of_kind `No and to_ = of_kind `Timeout in
            Buffer.add_string buf
              (Printf.sprintf "%-4d %5d (%.2f) %5d (%.2f) %9d\n" k (List.length yes)
                 (avg yes) (List.length no) (avg no) (List.length to_))
          end
        done
      end)
    Group.all;
  Buffer.contents buf

(* --- Figure 5 ---------------------------------------------------------------- *)

let figure5 ctx =
  let names, matrix = Stats.correlation_matrix ctx.records in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "Figure 5: Correlation analysis (Pearson)\n";
  Buffer.add_string buf (Printf.sprintf "%-10s" "");
  Array.iter (fun n -> Buffer.add_string buf (Printf.sprintf "%9s" n)) names;
  Buffer.add_char buf '\n';
  Array.iteri
    (fun i n ->
      Buffer.add_string buf (Printf.sprintf "%-10s" n);
      Array.iter
        (fun v -> Buffer.add_string buf (Printf.sprintf "%9.2f" v))
        matrix.(i);
      Buffer.add_char buf '\n')
    names;
  Buffer.contents buf

(* --- Tables 3 and 4 ----------------------------------------------------------- *)

let algorithms =
  [ Ghd.Portfolio.Global_bip_alg; Ghd.Portfolio.Local_bip_alg;
    Ghd.Portfolio.Bal_sep_alg ]

let table3 ctx =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Table 3: GHW algorithms on Check(GHD, hw-1), avg runtimes in s\n";
  Buffer.add_string buf (Printf.sprintf "%-9s %6s" "hw->ghw" "Total");
  List.iter
    (fun alg ->
      Buffer.add_string buf
        (Printf.sprintf " | %-22s" (Ghd.Portfolio.algorithm_name alg ^ " yes/no")))
    algorithms;
  Buffer.add_char buf '\n';
  List.iter
    (fun k ->
      let rows = List.filter (fun g -> g.Analysis.from_k = k) ctx.ghd in
      if rows <> [] then begin
        Buffer.add_string buf
          (Printf.sprintf "%d -> %-4d %6d" k (k - 1) (List.length rows));
        List.iter
          (fun alg ->
            let runs =
              List.filter_map
                (fun g ->
                  List.find_opt (fun (r : Analysis.ghd_run) -> r.algorithm = alg)
                    g.Analysis.runs)
                rows
            in
            let of_kind kind =
              List.filter (fun (r : Analysis.ghd_run) -> r.outcome = kind) runs
            in
            let avg rs =
              match rs with
              | [] -> 0.0
              | _ ->
                  List.fold_left (fun a (r : Analysis.ghd_run) -> a +. r.seconds) 0.0 rs
                  /. float_of_int (List.length rs)
            in
            let yes = of_kind `Yes and no = of_kind `No in
            Buffer.add_string buf
              (Printf.sprintf " | %4d (%5.2f) %4d (%5.2f)" (List.length yes)
                 (avg yes) (List.length no) (avg no)))
          algorithms;
        Buffer.add_char buf '\n'
      end)
    [ 3; 4; 5; 6 ];
  Buffer.contents buf

let table4 ctx =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Table 4: GHW of instances, combined algorithms (avg runtime in s)\n";
  Buffer.add_string buf
    (Printf.sprintf "%-9s %12s %12s %9s\n" "hw->ghw" "yes (avg s)" "no (avg s)"
       "timeout");
  let improved = ref 0 and identical = ref 0 and open_ = ref 0 in
  List.iter
    (fun k ->
      let rows = List.filter (fun g -> g.Analysis.from_k = k) ctx.ghd in
      if rows <> [] then begin
        let of_kind kind =
          List.filter (fun g -> g.Analysis.combined = kind) rows
        in
        let avg rs =
          match rs with
          | [] -> 0.0
          | _ ->
              List.fold_left (fun a g -> a +. g.Analysis.combined_seconds) 0.0 rs
              /. float_of_int (List.length rs)
        in
        let yes = of_kind `Yes and no = of_kind `No and to_ = of_kind `Timeout in
        improved := !improved + List.length yes;
        identical := !identical + List.length no;
        open_ := !open_ + List.length to_;
        Buffer.add_string buf
          (Printf.sprintf "%d -> %-4d %5d (%.2f) %5d (%.2f) %9d\n" k (k - 1)
             (List.length yes) (avg yes) (List.length no) (avg no)
             (List.length to_))
      end)
    [ 3; 4; 5; 6 ];
  let solved = !improved + !identical in
  if solved > 0 then
    Buffer.add_string buf
      (Printf.sprintf
         "Solved cases where hw = ghw: %d of %d (%.1f%%); width improved: %d\n"
         !identical solved
         (100.0 *. float_of_int !identical /. float_of_int solved)
         !improved);
  Buffer.contents buf

(* --- Tables 5 and 6 ------------------------------------------------------------ *)

let improvement_bucket hw width =
  let c = float_of_int hw -. width in
  if c >= 1.0 -. 1e-9 then `Ge1
  else if c >= 0.5 -. 1e-9 then `Half
  else if c >= 0.1 -. 1e-9 then `Tenth
  else `No

let frac_table title width_of ctx =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (title ^ "\n");
  Buffer.add_string buf
    (Printf.sprintf "%-4s %6s %9s %10s %6s %9s\n" "hw" ">=1" "[0.5,1)" "[0.1,0.5)"
       "no" "timeout");
  List.iter
    (fun hw ->
      let rows = List.filter (fun f -> f.Analysis.hw = hw) ctx.frac in
      if rows <> [] then begin
        let counts = Hashtbl.create 4 in
        let bump key =
          Hashtbl.replace counts key (1 + Option.value (Hashtbl.find_opt counts key) ~default:0)
        in
        List.iter
          (fun f ->
            match width_of f with
            | None -> bump `Timeout
            | Some w -> bump (improvement_bucket hw w))
          rows;
        let c key = Option.value (Hashtbl.find_opt counts key) ~default:0 in
        Buffer.add_string buf
          (Printf.sprintf "%-4d %6d %9d %10d %6d %9d\n" hw (c `Ge1) (c `Half)
             (c `Tenth) (c `No) (c `Timeout))
      end)
    [ 2; 3; 4; 5; 6 ];
  Buffer.contents buf

let table5 ctx =
  frac_table "Table 5: Instances solved with ImproveHD"
    (fun f -> Some f.Analysis.improve_width)
    ctx

let table6 ctx =
  frac_table "Table 6: Instances solved with FracImproveHD"
    (fun f -> f.Analysis.frac_improve_width)
    ctx

(* --- ablations ------------------------------------------------------------------ *)

let ablation ?budget ?(budget_seconds = 1.0) ctx =
  let budget =
    match budget with
    | Some b -> b
    | None -> fun () -> Kit.Deadline.of_seconds budget_seconds
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "Ablation: design choices\n";
  (* DetKDecomp failure memoisation. *)
  let cyclic =
    List.filter_map
      (fun r ->
        match Analysis.hw_bound r with
        | Some k when k >= 2 -> Some (r.Analysis.instance, k)
        | _ -> None)
      ctx.records
  in
  let sample = List.filteri (fun i _ -> i mod 5 = 0) cyclic in
  let time_solve ~memoize (inst, k) =
    let t0 = Unix.gettimeofday () in
    ignore (Detk.solve ~deadline:(budget ()) ~memoize inst.Instance.hg ~k);
    Unix.gettimeofday () -. t0
  in
  let total memoize =
    List.fold_left (fun acc x -> acc +. time_solve ~memoize x) 0.0 sample
  in
  Buffer.add_string buf
    (Printf.sprintf
       "DetKDecomp on %d cyclic instances: memoization on %.3fs / off %.3fs\n"
       (List.length sample) (total true) (total false));
  (* GYO fast path for Check(HD,1) vs plain search. *)
  let acyclic_sample =
    List.filteri (fun i _ -> i mod 3 = 0)
      (List.filter
         (fun r -> Analysis.hw_bound r = Some 1)
         ctx.records)
  in
  let time_k1 gyo =
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun (r : Analysis.record) ->
        ignore
          (Detk.solve ~deadline:(budget ()) ~gyo_fast_path:gyo
             r.Analysis.instance.Instance.hg ~k:1))
      acyclic_sample;
    Unix.gettimeofday () -. t0
  in
  Buffer.add_string buf
    (Printf.sprintf
       "Check(HD,1) on %d acyclic instances: GYO %.4fs / search %.4fs\n"
       (List.length acyclic_sample) (time_k1 true) (time_k1 false));
  (* BalSep subedge fallback. *)
  let verdict_counts use_subedges =
    let yes = ref 0 and no = ref 0 and timeout = ref 0 in
    List.iter
      (fun (inst, k) ->
        match
          (Ghd.Bal_sep.solve ~deadline:(budget ()) ~use_subedges inst.Instance.hg
             ~k:(Stdlib.max 1 (k - 1)))
            .Ghd.Bal_sep.outcome
        with
        | Detk.Decomposition _ -> incr yes
        | Detk.No_decomposition -> incr no
        | Detk.Timeout -> incr timeout)
      sample;
    (!yes, !no, !timeout)
  in
  let y1, n1, t1 = verdict_counts true in
  let y2, n2, t2 = verdict_counts false in
  Buffer.add_string buf
    (Printf.sprintf
       "BalSep at hw-1 with subedges: yes=%d no=%d timeout=%d; without: yes=%d no=%d timeout=%d\n"
       y1 n1 t1 y2 n2 t2);
  (* Width-preserving preprocessing (subsumed edges + twin vertices). *)
  let reducible, shrink_e, shrink_v =
    List.fold_left
      (fun (n, de, dv) (r : Analysis.record) ->
        let h = r.Analysis.instance.Instance.hg in
        let red = Hg.Reduce.reduce h in
        if Hg.Reduce.is_noop red then (n, de, dv)
        else
          ( n + 1,
            de + h.Hg.Hypergraph.n_edges - red.Hg.Reduce.reduced.Hg.Hypergraph.n_edges,
            dv + h.Hg.Hypergraph.n_vertices
            - red.Hg.Reduce.reduced.Hg.Hypergraph.n_vertices ))
      (0, 0, 0) ctx.records
  in
  Buffer.add_string buf
    (Printf.sprintf
       "Reduction preprocessing: %d of %d instances shrink (total -%d edges, -%d vertices)\n"
       reducible (List.length ctx.records) shrink_e shrink_v);
  Buffer.contents buf

(* --- metrics summary ------------------------------------------------------------ *)

(* Which paper artefact each metric family informs; EXPERIMENTS.md holds
   the full per-metric catalogue. *)
let metric_support name =
  let has p = String.starts_with ~prefix:p name in
  if has "detk." then "Fig 4, Tables 3-4 (HD search effort)"
  else if has "balsep." then "Table 3 (BalSep)"
  else if has "subedges." then "Table 3 (f(H,k) subedge pools)"
  else if has "globalbip." then "Table 3 (GlobalBIP)"
  else if has "localbip." then "Table 3 (LocalBIP)"
  else if has "lp." then "Tables 5-6 (fractional LP)"
  else if has "portfolio." then "Table 4 (combined portfolio)"
  else "-"

let metrics_summary (snap : Kit.Metrics.snapshot) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "Search metrics (whole run)\n";
  Buffer.add_string buf
    (Printf.sprintf "%-28s %18s   %s\n" "metric" "value" "supports");
  List.iter
    (fun (name, v) ->
      if v <> 0 then
        Buffer.add_string buf
          (Printf.sprintf "%-28s %18d   %s\n" name v (metric_support name)))
    snap.Kit.Metrics.counters;
  List.iter
    (fun (name, (n, secs)) ->
      if n <> 0 then
        Buffer.add_string buf
          (Printf.sprintf "%-28s %8d x %6.3fs   %s\n" name n secs
             (metric_support name)))
    snap.Kit.Metrics.timers;
  List.iter
    (fun (name, (edges, counts)) ->
      if Array.fold_left ( + ) 0 counts <> 0 then begin
        let cells =
          String.concat ", "
            (Array.to_list
               (Array.mapi
                  (fun i c ->
                    if i < Array.length edges then
                      Printf.sprintf "<=%d: %d" edges.(i) c
                    else Printf.sprintf ">%d: %d" edges.(Array.length edges - 1) c)
                  counts))
        in
        Buffer.add_string buf
          (Printf.sprintf "%-28s [%s]   %s\n" name cells (metric_support name))
      end)
    snap.Kit.Metrics.histograms;
  Buffer.contents buf

(* --- fault-tolerant campaigns ---------------------------------------------- *)

module Journal = Journal
module J = Kit.Json

let ( let* ) = Option.bind

let field name conv j = Option.bind (J.member name j) conv

let verdict_to_string = function `Yes -> "yes" | `No -> "no" | `Timeout -> "timeout"

let verdict_of_string = function
  | "yes" -> Some `Yes
  | "no" -> Some `No
  | "timeout" -> Some `Timeout
  | _ -> None

let profile_to_json (p : Hg.Properties.profile) =
  J.Obj
    [
      ("vertices", J.Int p.Hg.Properties.vertices);
      ("edges", J.Int p.edges);
      ("arity", J.Int p.arity);
      ("degree", J.Int p.degree);
      ("bip", J.Int p.bip);
      ("bmip3", J.Int p.bmip3);
      ("bmip4", J.Int p.bmip4);
      ("vc_dim", match p.vc_dim with Some v -> J.Int v | None -> J.Null);
    ]

let profile_of_json j : Hg.Properties.profile option =
  let* vertices = field "vertices" J.to_int j in
  let* edges = field "edges" J.to_int j in
  let* arity = field "arity" J.to_int j in
  let* degree = field "degree" J.to_int j in
  let* bip = field "bip" J.to_int j in
  let* bmip3 = field "bmip3" J.to_int j in
  let* bmip4 = field "bmip4" J.to_int j in
  let vc_dim = field "vc_dim" J.to_int j in
  Some { Hg.Properties.vertices; edges; arity; degree; bip; bmip3; bmip4; vc_dim }

let record_to_json (r : Analysis.record) =
  let h = r.Analysis.instance.Instance.hg in
  J.Obj
    [
      ("profile", profile_to_json r.Analysis.profile);
      ( "hw_runs",
        J.List
          (List.map
             (fun (x : Analysis.hw_run) ->
               J.Obj
                 [
                   ("k", J.Int x.k);
                   ("v", J.String (verdict_to_string x.outcome));
                   ("s", J.Float x.seconds);
                 ])
             r.Analysis.hw_runs) );
      ( "hw",
        let status, k =
          match r.Analysis.hw with
          | Analysis.Exact k -> ("exact", k)
          | Analysis.Upper k -> ("upper", k)
          | Analysis.Open_above k -> ("open_above", k)
        in
        J.Obj [ ("status", J.String status); ("k", J.Int k) ] );
      ( "hd",
        match r.Analysis.hd with
        | Some d -> J.String (Decomp_io.to_text h d)
        | None -> J.Null );
    ]

(* [stats] is deliberately not journaled: per-instance search counters are
   empty unless metrics were enabled, and a resumed instance did no new
   search — so a rebuilt record carries [Kit.Metrics.empty]. *)
let record_of_json (inst : Instance.t) j : Analysis.record option =
  let* profile = field "profile" profile_of_json j in
  let* runs = field "hw_runs" J.to_list j in
  let* hw_runs =
    List.fold_right
      (fun rj acc ->
        let* acc = acc in
        let* k = field "k" J.to_int rj in
        let* v = field "v" J.string_value rj in
        let* outcome = verdict_of_string v in
        let* seconds = field "s" J.to_float rj in
        Some ({ Analysis.k; outcome; seconds } :: acc))
      runs (Some [])
  in
  let* hwj = J.member "hw" j in
  let* status = field "status" J.string_value hwj in
  let* k = field "k" J.to_int hwj in
  let* hw =
    match status with
    | "exact" -> Some (Analysis.Exact k)
    | "upper" -> Some (Analysis.Upper k)
    | "open_above" -> Some (Analysis.Open_above k)
    | _ -> None
  in
  let* hd =
    match J.member "hd" j with
    | Some J.Null | None -> Some None
    | Some v -> (
        let* text = J.string_value v in
        match Decomp_io.of_text inst.Instance.hg text with
        | Ok d -> Some (Some d)
        | Error _ -> None)
  in
  Some
    {
      Analysis.instance = inst;
      profile;
      hw_runs;
      hw;
      hd;
      stats = Kit.Metrics.empty;
    }

let task_to_json (t : Analysis.task) =
  let base =
    [
      ("instance", J.String t.Analysis.task_instance.Instance.name);
      ("attempts", J.Int t.Analysis.attempts);
      ("outcome", J.String (Kit.Outcome.label t.Analysis.result));
    ]
  in
  let detail =
    match Kit.Outcome.detail t.Analysis.result with
    | "" -> []
    | d -> [ ("detail", J.String d) ]
  in
  let record =
    match t.Analysis.result with
    | Kit.Outcome.Ok r -> [ ("record", record_to_json r) ]
    | _ -> []
  in
  J.Obj (base @ detail @ record)

let task_of_json ~find j : Analysis.task option =
  let* name = field "instance" J.string_value j in
  let* inst = find name in
  let attempts = Option.value (field "attempts" J.to_int j) ~default:1 in
  let* label = field "outcome" J.string_value j in
  let* result =
    if label = "ok" then
      let* rj = J.member "record" j in
      let* r = record_of_json inst rj in
      Some (Kit.Outcome.Ok r)
    else
      let detail = Option.value (field "detail" J.string_value j) ~default:"" in
      Kit.Outcome.of_label label ~detail
  in
  Some { Analysis.task_instance = inst; attempts; result }

let journal_header ~seed ~scale ~max_k =
  J.Obj
    [
      ("format", J.String "hyperbench-journal");
      ("version", J.Int 1);
      ("seed", J.Int seed);
      ("scale", J.Float scale);
      ("max_k", J.Int max_k);
    ]

(* Resuming under different generator parameters would silently mix two
   incomparable campaigns, so every identity field must agree. *)
let header_compatible expected actual =
  List.for_all
    (fun n -> J.member n expected = J.member n actual)
    [ "format"; "version"; "seed"; "scale"; "max_k" ]

type campaign = {
  context : context;
  tasks : Analysis.task list;
  resumed : int;
  journal_corrupt : int;
}

let prepare_campaign ?(seed = 2019) ?(scale = 1.0) ?(budget_seconds = 1.0)
    ?budget ?budget_for ?retries ?mem_mb ?(max_k = 8) ?jobs ?(intra = false)
    ?isolate ?wall ?shard ?cache ?journal ?(resume = false) () =
  let budget =
    match budget with
    | Some b -> b
    | None -> fun () -> Kit.Deadline.of_seconds budget_seconds
  in
  (match shard with
  | Some (s, n) when n < 1 || s < 0 || s >= n ->
      invalid_arg
        (Printf.sprintf "prepare_campaign: bad shard %d/%d (need 0 <= s < n)" s
           n)
  | Some _ | None -> ());
  let instances = Repository.build ~seed ~scale () in
  let find name = Repository.find instances name in
  let header = journal_header ~seed ~scale ~max_k in
  let resume_data =
    match journal with
    | Some path when resume && Sys.file_exists path -> (
        match Journal.read ~path with
        | Error m -> Error (Printf.sprintf "%s: %s" path m)
        | Ok { Journal.header = None; entries = []; corrupt = 0 } -> Ok ([], 0)
        | Ok { Journal.header = None; _ } ->
            (* A file with content but no parseable line 1 lost its run
               parameters; resuming against it would mix campaigns. *)
            Error
              (Printf.sprintf
                 "%s: corrupt journal header (line 1 is not valid JSON); \
                  refusing to resume"
                 path)
        | Ok { Journal.header = Some h; entries; corrupt }
          when header_compatible header h ->
            (* An entry that no longer decodes (hand-edited, or torn in a
               way that still parses as JSON) is dropped and its instance
               simply reruns. *)
            let tasks, bad =
              List.fold_left
                (fun (ts, bad) e ->
                  match task_of_json ~find e with
                  | Some t -> (t :: ts, bad)
                  | None -> (ts, bad + 1))
                ([], 0) entries
            in
            Ok (List.rev tasks, corrupt + bad)
        | Ok _ ->
            Error
              (Printf.sprintf
                 "%s: journal belongs to a different campaign \
                  (seed/scale/max_k mismatch)"
                 path))
    | _ -> Ok ([], 0)
  in
  match resume_data with
  | Error _ as e -> e
  | Ok (resumed_tasks, journal_corrupt) ->
      let done_names = Hashtbl.create 64 in
      List.iter
        (fun (t : Analysis.task) ->
          Hashtbl.replace done_names t.Analysis.task_instance.Instance.name ())
        resumed_tasks;
      (* The shard filter is by instance *index* in the full repository
         list — deterministic, so shard s of n always names the same
         instances (and matches Repository.pack's split) no matter which
         machine runs it. The journal header carries no shard field:
         shard journals of one campaign are mutually header-compatible
         and merge with merge_journals. *)
      let in_shard =
        match shard with
        | None -> fun _ -> true
        | Some (s, n) -> fun idx -> idx mod n = s
      in
      let todo =
        List.filteri
          (fun idx (i : Instance.t) ->
            in_shard idx && not (Hashtbl.mem done_names i.Instance.name))
          instances
      in
      (* (Re)write the journal: fresh runs get header-only; resumes get the
         surviving entries back, which also truncates any torn tail. *)
      let writer =
        Option.map
          (fun path ->
            Journal.start ~path ~header
              ~entries:(List.map task_to_json resumed_tasks))
          journal
      in
      let on_done =
        Option.map (fun w t -> Journal.append w (task_to_json t)) writer
      in
      (* With isolation on, this pass forks workers — it runs before the
         ghd/fractional passes spawn any domains, keeping fork safe. *)
      let tasks_run =
        Analysis.analyze_outcomes ~budget ?budget_for ?retries ?mem_mb ~max_k
          ?jobs ?isolate ?wall ?cache ?on_done todo
      in
      Option.iter Journal.close writer;
      (* Stitch resumed and fresh tasks back into instance order so every
         downstream table is independent of what was resumed. *)
      let by_name = Hashtbl.create 64 in
      List.iter
        (fun (t : Analysis.task) ->
          Hashtbl.replace by_name t.Analysis.task_instance.Instance.name t)
        (resumed_tasks @ tasks_run);
      let tasks =
        List.filter_map
          (fun (i : Instance.t) -> Hashtbl.find_opt by_name i.Instance.name)
          instances
      in
      let records =
        List.filter_map (fun t -> Kit.Outcome.get t.Analysis.result) tasks
      in
      let intra_jobs = intra_width ~intra ?jobs (List.length records) in
      let ghd = Analysis.ghd_comparison ~budget ?jobs ~intra_jobs records in
      let frac = Analysis.fractional ~budget ?jobs records in
      Ok
        {
          context =
            { instances; records; ghd; frac; stats = Kit.Metrics.snapshot () };
          tasks;
          resumed = List.length resumed_tasks;
          journal_corrupt;
        }

(* Merge shard journals (or any interrupted fragments of one campaign)
   into a single journal equivalent to the unsharded run's. Headers must
   all be present and mutually compatible — the same refusal rule as
   resume. Entries are deduplicated by instance name, first occurrence
   wins, and reordered to repository instance order (seed and scale come
   from the header), so the merged file is byte-deterministic in its
   inputs regardless of shard interleaving. *)
let merge_journals ~into paths =
  match paths with
  | [] -> Error "merge_journals: no input journals"
  | first_path :: _ -> (
      let rec read_all acc = function
        | [] -> Ok (List.rev acc)
        | path :: rest -> (
            match Journal.read ~path with
            | Error m -> Error (Printf.sprintf "%s: %s" path m)
            | Ok { Journal.header = None; _ } ->
                Error
                  (Printf.sprintf
                     "%s: corrupt or missing journal header (line 1)" path)
            | Ok { Journal.header = Some h; entries; corrupt } ->
                read_all ((path, h, entries, corrupt) :: acc) rest)
      in
      match read_all [] paths with
      | Error _ as e -> e
      | Ok parts -> (
          let _, first_header, _, _ = List.hd parts in
          match
            List.find_opt
              (fun (_, h, _, _) -> not (header_compatible first_header h))
              parts
          with
          | Some (path, _, _, _) ->
              Error
                (Printf.sprintf
                   "%s: journal belongs to a different campaign than %s \
                    (seed/scale/max_k mismatch)"
                   path first_path)
          | None ->
              let seen = Hashtbl.create 256 in
              let merged = ref [] in
              let corrupt = ref 0 in
              List.iter
                (fun (_, _, entries, c) ->
                  corrupt := !corrupt + c;
                  List.iter
                    (fun e ->
                      match field "instance" J.string_value e with
                      | None -> incr corrupt
                      | Some name ->
                          if not (Hashtbl.mem seen name) then begin
                            Hashtbl.replace seen name ();
                            merged := (name, e) :: !merged
                          end)
                    entries)
                parts;
              (* Reorder to instance order when the header still decodes
                 to generator parameters; entries for unknown names keep
                 their first-seen order at the tail. *)
              let order =
                let* seed = field "seed" J.to_int first_header in
                let* scale = field "scale" J.to_float first_header in
                Some (Repository.build ~seed ~scale ())
              in
              let merged = List.rev !merged in
              let merged =
                match order with
                | None -> List.map snd merged
                | Some instances ->
                    let tbl = Hashtbl.create 256 in
                    List.iter (fun (n, e) -> Hashtbl.replace tbl n e) merged;
                    let in_order =
                      List.filter_map
                        (fun (i : Instance.t) ->
                          match Hashtbl.find_opt tbl i.Instance.name with
                          | Some e ->
                              Hashtbl.remove tbl i.Instance.name;
                              Some e
                          | None -> None)
                        instances
                    in
                    let stragglers =
                      List.filter_map
                        (fun (n, e) ->
                          if Hashtbl.mem tbl n then Some e else None)
                        merged
                    in
                    in_order @ stragglers
              in
              Journal.close
                (Journal.start ~path:into ~header:first_header ~entries:merged);
              Ok (List.length merged, !corrupt)))

let campaign_summary c =
  let buf = Buffer.create 256 in
  let count label =
    List.length
      (List.filter
         (fun (t : Analysis.task) -> Kit.Outcome.label t.Analysis.result = label)
         c.tasks)
  in
  let retried =
    List.length
      (List.filter (fun (t : Analysis.task) -> t.Analysis.attempts > 1) c.tasks)
  in
  Buffer.add_string buf "Campaign summary\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  instances %d | ok %d | timeout %d | out_of_memory %d | \
        stack_overflow %d | crash %d\n"
       (List.length c.tasks) (count "ok") (count "timeout")
       (count "out_of_memory") (count "stack_overflow") (count "crash"));
  Buffer.add_string buf
    (Printf.sprintf
       "  resumed from journal %d | retried %d | corrupt journal lines %d\n"
       c.resumed retried c.journal_corrupt);
  List.iter
    (fun (t : Analysis.task) ->
      if not (Kit.Outcome.is_ok t.Analysis.result) then begin
        let first_line s =
          match String.index_opt s '\n' with
          | Some i -> String.sub s 0 i
          | None -> s
        in
        Buffer.add_string buf
          (Printf.sprintf "  %s: %s after %d attempt(s)%s\n"
             t.Analysis.task_instance.Instance.name
             (Kit.Outcome.label t.Analysis.result)
             t.Analysis.attempts
             (match Kit.Outcome.detail t.Analysis.result with
             | "" -> ""
             | d -> " - " ^ first_line d))
      end)
    c.tasks;
  Buffer.contents buf

let run_all ?seed ?scale ?budget_seconds () =
  let ctx = prepare ?seed ?scale ?budget_seconds () in
  String.concat "\n"
    [
      table1 ctx;
      table2 ctx;
      figure3 ctx;
      figure4 ctx;
      figure5 ctx;
      table3 ctx;
      table4 ctx;
      table5 ctx;
      table6 ctx;
      ablation ?budget_seconds ctx;
    ]
