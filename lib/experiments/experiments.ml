module Analysis = Benchlib.Analysis
module Instance = Benchlib.Instance
module Repository = Benchlib.Repository
module Group = Benchlib.Group
module Stats = Benchlib.Stats

type context = {
  instances : Instance.t list;
  records : Analysis.record list;
  ghd : Analysis.ghd_record list;
  frac : Analysis.frac_record list;
  stats : Kit.Metrics.snapshot;
}

let prepare ?(seed = 2019) ?(scale = 1.0) ?(budget_seconds = 1.0) ?budget
    ?(max_k = 8) ?jobs () =
  let budget =
    match budget with
    | Some b -> b
    | None -> fun () -> Kit.Deadline.of_seconds budget_seconds
  in
  let instances = Repository.build ~seed ~scale () in
  let records = Analysis.analyze ~budget ~max_k ?jobs instances in
  let ghd = Analysis.ghd_comparison ~budget ?jobs records in
  let frac = Analysis.fractional ~budget ?jobs records in
  { instances; records; ghd; frac; stats = Kit.Metrics.snapshot () }

(* Solver seconds actually measured by the analysis pass: the sequential-
   equivalent cost, used by bench/main.ml to report the pool speedup. *)
let solver_seconds ctx =
  let hw =
    List.fold_left
      (fun acc r ->
        List.fold_left
          (fun a (run : Analysis.hw_run) -> a +. run.seconds)
          acc r.Analysis.hw_runs)
      0.0 ctx.records
  in
  List.fold_left
    (fun acc g ->
      List.fold_left
        (fun a (r : Analysis.ghd_run) -> a +. r.seconds)
        acc g.Analysis.runs)
    hw ctx.ghd

let group_records ctx g =
  List.filter (fun r -> r.Analysis.instance.Instance.group = g) ctx.records

(* --- Table 1 ---------------------------------------------------------------- *)

let is_cyclic (r : Analysis.record) =
  (* hw >= 2: the k = 1 check answered "no" (or a higher exact hw is
     known). *)
  match r.Analysis.hw with
  | Analysis.Exact k | Analysis.Upper k -> k >= 2
  | Analysis.Open_above _ -> (
      match r.Analysis.hw_runs with
      | { k = 1; outcome = `No; _ } :: _ -> true
      | _ -> false)

let table1 ctx =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "Table 1: Overview of benchmark instances\n";
  Buffer.add_string buf
    (Printf.sprintf "%-18s %-16s %14s %10s\n" "Benchmark" "Group" "No. instances"
       "hw >= 2");
  let total = ref 0 and total_cyclic = ref 0 in
  List.iter
    (fun (source, insts) ->
      let recs =
        List.filter
          (fun r -> r.Analysis.instance.Instance.source = source)
          ctx.records
      in
      let cyclic = List.length (List.filter is_cyclic recs) in
      total := !total + List.length insts;
      total_cyclic := !total_cyclic + cyclic;
      Buffer.add_string buf
        (Printf.sprintf "%-18s %-16s %14d %10d\n" source
           (Group.name (List.hd insts).Instance.group)
           (List.length insts) cyclic))
    (Repository.sources ctx.instances);
  Buffer.add_string buf
    (Printf.sprintf "%-18s %-16s %14d %10d\n" "Total" "" !total !total_cyclic);
  Buffer.contents buf

(* --- Table 2 ---------------------------------------------------------------- *)

let table2 ctx =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "Table 2: Properties of all benchmark instances\n";
  let metrics : (string * (Analysis.record -> int option)) list =
    [
      ("Deg", fun r -> Some r.Analysis.profile.Hg.Properties.degree);
      ("BIP", fun r -> Some r.Analysis.profile.Hg.Properties.bip);
      ("3-BMIP", fun r -> Some r.Analysis.profile.Hg.Properties.bmip3);
      ("4-BMIP", fun r -> Some r.Analysis.profile.Hg.Properties.bmip4);
      ("VC-dim", fun r -> r.Analysis.profile.Hg.Properties.vc_dim);
    ]
  in
  List.iter
    (fun g ->
      let recs = group_records ctx g in
      if recs <> [] then begin
        Buffer.add_string buf (Printf.sprintf "\n%s (%d instances)\n" (Group.name g) (List.length recs));
        Buffer.add_string buf
          (Printf.sprintf "%-4s %8s %8s %8s %8s %8s\n" "i" "Deg" "BIP" "3-BMIP"
             "4-BMIP" "VC-dim");
        let hists =
          List.map (fun (_, m) -> Stats.property_histogram m recs) metrics
        in
        let label = [| "0"; "1"; "2"; "3"; "4"; "5"; ">5" |] in
        for i = 0 to 6 do
          Buffer.add_string buf
            (Printf.sprintf "%-4s %8d %8d %8d %8d %8d\n" label.(i)
               (List.nth hists 0).(i) (List.nth hists 1).(i)
               (List.nth hists 2).(i) (List.nth hists 3).(i)
               (List.nth hists 4).(i))
        done;
        (* The edge-clique-cover condition discussed in section 2: how many
           instances have more variables than constraints. *)
        let n_gt_m =
          List.length
            (List.filter
               (fun (r : Analysis.record) ->
                 Hg.Properties.has_more_vertices_than_edges
                   r.Analysis.instance.Instance.hg)
               recs)
        in
        Buffer.add_string buf
          (Printf.sprintf "n > m (edge-clique-cover applicable): %d of %d\n"
             n_gt_m (List.length recs))
      end)
    Group.all;
  Buffer.contents buf

(* --- Figure 3 ---------------------------------------------------------------- *)

let pct part total =
  if total = 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int total

let figure3 ctx =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "Figure 3: Hypergraph sizes (% of group)\n";
  let render title buckets_of labels =
    Buffer.add_string buf (Printf.sprintf "\n%s\n%-16s" title "");
    Array.iter (fun l -> Buffer.add_string buf (Printf.sprintf "%8s" l)) labels;
    Buffer.add_char buf '\n';
    List.iter
      (fun g ->
        let recs = group_records ctx g in
        if recs <> [] then begin
          let b = buckets_of recs in
          let total = Array.fold_left ( + ) 0 b in
          Buffer.add_string buf (Printf.sprintf "%-16s" (Group.name g));
          Array.iter
            (fun v -> Buffer.add_string buf (Printf.sprintf "%7.1f%%" (pct v total)))
            b;
          Buffer.add_char buf '\n'
        end)
      Group.all
  in
  let size_labels = [| "1-10"; "11-20"; "21-30"; "31-40"; "41-50"; ">50" |] in
  render "Vertices"
    (Stats.size_buckets (fun r -> r.Analysis.profile.Hg.Properties.vertices))
    size_labels;
  render "Edges"
    (Stats.size_buckets (fun r -> r.Analysis.profile.Hg.Properties.edges))
    size_labels;
  render "Arity" Stats.arity_buckets [| "1-5"; "6-10"; "11-15"; "16-20"; ">20" |];
  Buffer.contents buf

(* --- Figure 4 ---------------------------------------------------------------- *)

let figure4 ctx =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    "Figure 4: HW analysis per group and k (avg runtimes in s)\n";
  List.iter
    (fun g ->
      let recs = group_records ctx g in
      if recs <> [] then begin
        Buffer.add_string buf (Printf.sprintf "\n%s\n" (Group.name g));
        Buffer.add_string buf
          (Printf.sprintf "%-4s %12s %12s %9s\n" "k" "yes (avg s)" "no (avg s)"
             "timeout");
        let max_k =
          List.fold_left
            (fun m r ->
              List.fold_left (fun m (run : Analysis.hw_run) -> Stdlib.max m run.k) m
                r.Analysis.hw_runs)
            1 recs
        in
        for k = 1 to max_k do
          let outcomes =
            List.filter_map
              (fun r ->
                List.find_opt (fun (run : Analysis.hw_run) -> run.k = k) r.Analysis.hw_runs)
              recs
          in
          if outcomes <> [] then begin
            let of_kind kind =
              List.filter (fun (run : Analysis.hw_run) -> run.outcome = kind) outcomes
            in
            let avg runs =
              match runs with
              | [] -> 0.0
              | _ ->
                  List.fold_left (fun a (r : Analysis.hw_run) -> a +. r.seconds) 0.0 runs
                  /. float_of_int (List.length runs)
            in
            let yes = of_kind `Yes and no = of_kind `No and to_ = of_kind `Timeout in
            Buffer.add_string buf
              (Printf.sprintf "%-4d %5d (%.2f) %5d (%.2f) %9d\n" k (List.length yes)
                 (avg yes) (List.length no) (avg no) (List.length to_))
          end
        done
      end)
    Group.all;
  Buffer.contents buf

(* --- Figure 5 ---------------------------------------------------------------- *)

let figure5 ctx =
  let names, matrix = Stats.correlation_matrix ctx.records in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "Figure 5: Correlation analysis (Pearson)\n";
  Buffer.add_string buf (Printf.sprintf "%-10s" "");
  Array.iter (fun n -> Buffer.add_string buf (Printf.sprintf "%9s" n)) names;
  Buffer.add_char buf '\n';
  Array.iteri
    (fun i n ->
      Buffer.add_string buf (Printf.sprintf "%-10s" n);
      Array.iter
        (fun v -> Buffer.add_string buf (Printf.sprintf "%9.2f" v))
        matrix.(i);
      Buffer.add_char buf '\n')
    names;
  Buffer.contents buf

(* --- Tables 3 and 4 ----------------------------------------------------------- *)

let algorithms =
  [ Ghd.Portfolio.Global_bip_alg; Ghd.Portfolio.Local_bip_alg;
    Ghd.Portfolio.Bal_sep_alg ]

let table3 ctx =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Table 3: GHW algorithms on Check(GHD, hw-1), avg runtimes in s\n";
  Buffer.add_string buf (Printf.sprintf "%-9s %6s" "hw->ghw" "Total");
  List.iter
    (fun alg ->
      Buffer.add_string buf
        (Printf.sprintf " | %-22s" (Ghd.Portfolio.algorithm_name alg ^ " yes/no")))
    algorithms;
  Buffer.add_char buf '\n';
  List.iter
    (fun k ->
      let rows = List.filter (fun g -> g.Analysis.from_k = k) ctx.ghd in
      if rows <> [] then begin
        Buffer.add_string buf
          (Printf.sprintf "%d -> %-4d %6d" k (k - 1) (List.length rows));
        List.iter
          (fun alg ->
            let runs =
              List.filter_map
                (fun g ->
                  List.find_opt (fun (r : Analysis.ghd_run) -> r.algorithm = alg)
                    g.Analysis.runs)
                rows
            in
            let of_kind kind =
              List.filter (fun (r : Analysis.ghd_run) -> r.outcome = kind) runs
            in
            let avg rs =
              match rs with
              | [] -> 0.0
              | _ ->
                  List.fold_left (fun a (r : Analysis.ghd_run) -> a +. r.seconds) 0.0 rs
                  /. float_of_int (List.length rs)
            in
            let yes = of_kind `Yes and no = of_kind `No in
            Buffer.add_string buf
              (Printf.sprintf " | %4d (%5.2f) %4d (%5.2f)" (List.length yes)
                 (avg yes) (List.length no) (avg no)))
          algorithms;
        Buffer.add_char buf '\n'
      end)
    [ 3; 4; 5; 6 ];
  Buffer.contents buf

let table4 ctx =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Table 4: GHW of instances, combined algorithms (avg runtime in s)\n";
  Buffer.add_string buf
    (Printf.sprintf "%-9s %12s %12s %9s\n" "hw->ghw" "yes (avg s)" "no (avg s)"
       "timeout");
  let improved = ref 0 and identical = ref 0 and open_ = ref 0 in
  List.iter
    (fun k ->
      let rows = List.filter (fun g -> g.Analysis.from_k = k) ctx.ghd in
      if rows <> [] then begin
        let of_kind kind =
          List.filter (fun g -> g.Analysis.combined = kind) rows
        in
        let avg rs =
          match rs with
          | [] -> 0.0
          | _ ->
              List.fold_left (fun a g -> a +. g.Analysis.combined_seconds) 0.0 rs
              /. float_of_int (List.length rs)
        in
        let yes = of_kind `Yes and no = of_kind `No and to_ = of_kind `Timeout in
        improved := !improved + List.length yes;
        identical := !identical + List.length no;
        open_ := !open_ + List.length to_;
        Buffer.add_string buf
          (Printf.sprintf "%d -> %-4d %5d (%.2f) %5d (%.2f) %9d\n" k (k - 1)
             (List.length yes) (avg yes) (List.length no) (avg no)
             (List.length to_))
      end)
    [ 3; 4; 5; 6 ];
  let solved = !improved + !identical in
  if solved > 0 then
    Buffer.add_string buf
      (Printf.sprintf
         "Solved cases where hw = ghw: %d of %d (%.1f%%); width improved: %d\n"
         !identical solved
         (100.0 *. float_of_int !identical /. float_of_int solved)
         !improved);
  Buffer.contents buf

(* --- Tables 5 and 6 ------------------------------------------------------------ *)

let improvement_bucket hw width =
  let c = float_of_int hw -. width in
  if c >= 1.0 -. 1e-9 then `Ge1
  else if c >= 0.5 -. 1e-9 then `Half
  else if c >= 0.1 -. 1e-9 then `Tenth
  else `No

let frac_table title width_of ctx =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (title ^ "\n");
  Buffer.add_string buf
    (Printf.sprintf "%-4s %6s %9s %10s %6s %9s\n" "hw" ">=1" "[0.5,1)" "[0.1,0.5)"
       "no" "timeout");
  List.iter
    (fun hw ->
      let rows = List.filter (fun f -> f.Analysis.hw = hw) ctx.frac in
      if rows <> [] then begin
        let counts = Hashtbl.create 4 in
        let bump key =
          Hashtbl.replace counts key (1 + Option.value (Hashtbl.find_opt counts key) ~default:0)
        in
        List.iter
          (fun f ->
            match width_of f with
            | None -> bump `Timeout
            | Some w -> bump (improvement_bucket hw w))
          rows;
        let c key = Option.value (Hashtbl.find_opt counts key) ~default:0 in
        Buffer.add_string buf
          (Printf.sprintf "%-4d %6d %9d %10d %6d %9d\n" hw (c `Ge1) (c `Half)
             (c `Tenth) (c `No) (c `Timeout))
      end)
    [ 2; 3; 4; 5; 6 ];
  Buffer.contents buf

let table5 ctx =
  frac_table "Table 5: Instances solved with ImproveHD"
    (fun f -> Some f.Analysis.improve_width)
    ctx

let table6 ctx =
  frac_table "Table 6: Instances solved with FracImproveHD"
    (fun f -> f.Analysis.frac_improve_width)
    ctx

(* --- ablations ------------------------------------------------------------------ *)

let ablation ?budget ?(budget_seconds = 1.0) ctx =
  let budget =
    match budget with
    | Some b -> b
    | None -> fun () -> Kit.Deadline.of_seconds budget_seconds
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "Ablation: design choices\n";
  (* DetKDecomp failure memoisation. *)
  let cyclic =
    List.filter_map
      (fun r ->
        match Analysis.hw_bound r with
        | Some k when k >= 2 -> Some (r.Analysis.instance, k)
        | _ -> None)
      ctx.records
  in
  let sample = List.filteri (fun i _ -> i mod 5 = 0) cyclic in
  let time_solve ~memoize (inst, k) =
    let t0 = Unix.gettimeofday () in
    ignore (Detk.solve ~deadline:(budget ()) ~memoize inst.Instance.hg ~k);
    Unix.gettimeofday () -. t0
  in
  let total memoize =
    List.fold_left (fun acc x -> acc +. time_solve ~memoize x) 0.0 sample
  in
  Buffer.add_string buf
    (Printf.sprintf
       "DetKDecomp on %d cyclic instances: memoization on %.3fs / off %.3fs\n"
       (List.length sample) (total true) (total false));
  (* GYO fast path for Check(HD,1) vs plain search. *)
  let acyclic_sample =
    List.filteri (fun i _ -> i mod 3 = 0)
      (List.filter
         (fun r -> Analysis.hw_bound r = Some 1)
         ctx.records)
  in
  let time_k1 gyo =
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun (r : Analysis.record) ->
        ignore
          (Detk.solve ~deadline:(budget ()) ~gyo_fast_path:gyo
             r.Analysis.instance.Instance.hg ~k:1))
      acyclic_sample;
    Unix.gettimeofday () -. t0
  in
  Buffer.add_string buf
    (Printf.sprintf
       "Check(HD,1) on %d acyclic instances: GYO %.4fs / search %.4fs\n"
       (List.length acyclic_sample) (time_k1 true) (time_k1 false));
  (* BalSep subedge fallback. *)
  let verdict_counts use_subedges =
    let yes = ref 0 and no = ref 0 and timeout = ref 0 in
    List.iter
      (fun (inst, k) ->
        match
          (Ghd.Bal_sep.solve ~deadline:(budget ()) ~use_subedges inst.Instance.hg
             ~k:(Stdlib.max 1 (k - 1)))
            .Ghd.Bal_sep.outcome
        with
        | Detk.Decomposition _ -> incr yes
        | Detk.No_decomposition -> incr no
        | Detk.Timeout -> incr timeout)
      sample;
    (!yes, !no, !timeout)
  in
  let y1, n1, t1 = verdict_counts true in
  let y2, n2, t2 = verdict_counts false in
  Buffer.add_string buf
    (Printf.sprintf
       "BalSep at hw-1 with subedges: yes=%d no=%d timeout=%d; without: yes=%d no=%d timeout=%d\n"
       y1 n1 t1 y2 n2 t2);
  (* Width-preserving preprocessing (subsumed edges + twin vertices). *)
  let reducible, shrink_e, shrink_v =
    List.fold_left
      (fun (n, de, dv) (r : Analysis.record) ->
        let h = r.Analysis.instance.Instance.hg in
        let red = Hg.Reduce.reduce h in
        if Hg.Reduce.is_noop red then (n, de, dv)
        else
          ( n + 1,
            de + h.Hg.Hypergraph.n_edges - red.Hg.Reduce.reduced.Hg.Hypergraph.n_edges,
            dv + h.Hg.Hypergraph.n_vertices
            - red.Hg.Reduce.reduced.Hg.Hypergraph.n_vertices ))
      (0, 0, 0) ctx.records
  in
  Buffer.add_string buf
    (Printf.sprintf
       "Reduction preprocessing: %d of %d instances shrink (total -%d edges, -%d vertices)\n"
       reducible (List.length ctx.records) shrink_e shrink_v);
  Buffer.contents buf

(* --- metrics summary ------------------------------------------------------------ *)

(* Which paper artefact each metric family informs; EXPERIMENTS.md holds
   the full per-metric catalogue. *)
let metric_support name =
  let has p = String.starts_with ~prefix:p name in
  if has "detk." then "Fig 4, Tables 3-4 (HD search effort)"
  else if has "balsep." then "Table 3 (BalSep)"
  else if has "subedges." then "Table 3 (f(H,k) subedge pools)"
  else if has "globalbip." then "Table 3 (GlobalBIP)"
  else if has "localbip." then "Table 3 (LocalBIP)"
  else if has "lp." then "Tables 5-6 (fractional LP)"
  else if has "portfolio." then "Table 4 (combined portfolio)"
  else "-"

let metrics_summary (snap : Kit.Metrics.snapshot) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "Search metrics (whole run)\n";
  Buffer.add_string buf
    (Printf.sprintf "%-28s %18s   %s\n" "metric" "value" "supports");
  List.iter
    (fun (name, v) ->
      if v <> 0 then
        Buffer.add_string buf
          (Printf.sprintf "%-28s %18d   %s\n" name v (metric_support name)))
    snap.Kit.Metrics.counters;
  List.iter
    (fun (name, (n, secs)) ->
      if n <> 0 then
        Buffer.add_string buf
          (Printf.sprintf "%-28s %8d x %6.3fs   %s\n" name n secs
             (metric_support name)))
    snap.Kit.Metrics.timers;
  List.iter
    (fun (name, (edges, counts)) ->
      if Array.fold_left ( + ) 0 counts <> 0 then begin
        let cells =
          String.concat ", "
            (Array.to_list
               (Array.mapi
                  (fun i c ->
                    if i < Array.length edges then
                      Printf.sprintf "<=%d: %d" edges.(i) c
                    else Printf.sprintf ">%d: %d" edges.(Array.length edges - 1) c)
                  counts))
        in
        Buffer.add_string buf
          (Printf.sprintf "%-28s [%s]   %s\n" name cells (metric_support name))
      end)
    snap.Kit.Metrics.histograms;
  Buffer.contents buf

let run_all ?seed ?scale ?budget_seconds () =
  let ctx = prepare ?seed ?scale ?budget_seconds () in
  String.concat "\n"
    [
      table1 ctx;
      table2 ctx;
      figure3 ctx;
      figure4 ctx;
      figure5 ctx;
      table3 ctx;
      table4 ctx;
      table5 ctx;
      table6 ctx;
      ablation ?budget_seconds ctx;
    ]
