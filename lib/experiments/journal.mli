(** Append-only JSONL campaign journal.

    One header line (run parameters) followed by one JSON object per
    completed instance. The format is crash-safe by construction:

    - {!start} writes the header — and, on resume, the already-valid
      entries — to a temporary file, fsyncs it and renames it into
      place, so a kill mid-(re)write can never leave a half-written
      header behind, and a torn trailing line from a previous crash is
      truncated away;
    - {!append} writes one complete line under a mutex and flushes it,
      so concurrent worker domains never interleave bytes and a kill
      loses at most the entries still in flight.

    The payload is {!Kit.Json.t}; the record schema lives in
    {!Experiments}. *)

type t
(** An open journal writer. Safe to share across domains. *)

val start : path:string -> header:Kit.Json.t -> entries:Kit.Json.t list -> t
(** Atomically (re)write [path] to contain [header] then [entries], one
    compact JSON value per line, and return a writer positioned to
    append. Pass [entries = []] to begin a fresh journal; pass the
    surviving entries of {!read} to continue one.
    @raise Sys_error on I/O failure. *)

val append : t -> Kit.Json.t -> unit
(** Append one entry line and flush. Mutex-protected; callable from any
    domain (this is the [on_done] hook of
    {!Benchlib.Analysis.analyze_outcomes}). Counted in the
    ["journal.appended"] metric. *)

val close : t -> unit
(** Fsync and close. Idempotent. An fsync refused by the filesystem
    (some tmpfs setups) is not fatal — durability degrades to flush —
    but each refusal is counted in the ["journal.fsync_errors"] metric
    so [--stats] surfaces it. *)

type contents = {
  header : Kit.Json.t option;
      (** the parsed {e first line} — [None] for an empty file {e or}
          when line 1 is unparseable (the latter also counts as a
          corrupt line, and resume refuses it) *)
  entries : Kit.Json.t list;  (** valid entry lines, in file order *)
  corrupt : int;
      (** unparseable lines skipped — normally 0 or, after a kill mid-
          append, 1 (the torn final line); counted in the
          ["journal.corrupt"] metric *)
}

val read : path:string -> (contents, string) result
(** Parse a journal back. Only the literal line 1 can be the header: if
    it is unparseable, [header] is [None] and the line counts as
    corrupt — later entry lines are {e never} promoted to header (they
    would impersonate the run parameters). Corrupt entry lines are
    skipped and counted, never fatal; [Error] means the file itself
    could not be read. *)
