(** Reproductions of every table and figure of the paper's evaluation
    (§5.6 and §6). Each function renders one artefact in the paper's shape
    from a shared analysis pass; [run_all] executes them in order.

    Absolute counts differ from the paper (our repository is a seeded,
    scaled rebuild of sources that are not redistributable; see DESIGN.md)
    — the comparisons recorded in EXPERIMENTS.md are about shape: which
    classes are cyclic, where hw sits, which algorithm wins where, and how
    rarely ghw improves on hw. *)

type context = {
  instances : Benchlib.Instance.t list;
  records : Benchlib.Analysis.record list;
  ghd : Benchlib.Analysis.ghd_record list;
  frac : Benchlib.Analysis.frac_record list;
  stats : Kit.Metrics.snapshot;
      (** global metrics snapshot taken when [prepare] finished — the
          accumulated search effort of the whole analysis pass
          ({!Kit.Metrics.empty} unless [Kit.Metrics.enabled] was set) *)
}

val prepare :
  ?seed:int ->
  ?scale:float ->
  ?budget_seconds:float ->
  ?budget:(unit -> Kit.Deadline.t) ->
  ?max_k:int ->
  ?jobs:int ->
  ?intra:bool ->
  ?cache:Benchlib.Result_cache.t ->
  unit ->
  context
(** Build the repository and run the shared hw / ghw / fractional
    analyses. [cache] consults/feeds a content-addressed
    {!Benchlib.Result_cache} during the hw ladder. [budget_seconds] (default 1.0) is the per-run timeout — the
    scaled-down stand-in for the paper's 3600 s; [budget] overrides it
    with an arbitrary per-run deadline factory (e.g.
    [Kit.Deadline.of_fuel] for bit-reproducible runs). [jobs] (default
    {!Kit.Pool.default_jobs}, i.e. the [HB_JOBS] knob) runs the
    per-instance loops on a domain pool. Results are collected in
    instance order, so verdicts and table contents do not depend on the
    pool interleaving; with a wall-clock budget, runs close to the
    timeout boundary remain timing-sensitive (between any two runs, at
    any [jobs]), while a fuel budget makes the tables identical at every
    [jobs] value.

    [intra] (default false; the [HB_INTRA] knob) adds the intra-parallel
    {!Ghd.Par_bal_sep} member to the ghd comparison, giving it the
    domains the pool would otherwise idle:
    [intra_jobs = max 1 (jobs / records)]. When the repository is at
    least as wide as the pool this stays 1 and the pass is unchanged. *)

val table1 : context -> string
(** Benchmark overview: instances and cyclic counts per source. *)

val table2 : context -> string
(** Deg / BIP / 3-BMIP / 4-BMIP / VC-dim histograms per group. *)

val figure3 : context -> string
(** Size distributions (vertices, edges, arity buckets) per group. *)

val figure4 : context -> string
(** hw analysis per group and level k: yes/no/timeout with average
    runtimes. *)

val figure5 : context -> string
(** Pairwise correlation matrix of the hypergraph metrics and hw. *)

val table3 : context -> string
(** GlobalBIP vs LocalBIP vs BalSep on Check(GHD, hw-1). *)

val table4 : context -> string
(** Combined (portfolio) ghw improvement results. *)

val table5 : context -> string
(** ImproveHD improvement buckets. *)

val table6 : context -> string
(** FracImproveHD improvement buckets. *)

val ablation :
  ?budget:(unit -> Kit.Deadline.t) -> ?budget_seconds:float -> context -> string
(** Design-choice ablations: DetKDecomp failure memoisation on/off and
    BalSep with/without the subedge fallback. [budget] overrides the
    wall-clock [budget_seconds] with an arbitrary deadline factory (pass a
    [Kit.Deadline.of_fuel] thunk to keep the whole bench deterministic). *)

val metrics_summary : Kit.Metrics.snapshot -> string
(** Render every non-zero metric of a snapshot together with the paper
    artefact it supports (the mapping is documented in EXPERIMENTS.md). *)

val solver_seconds : context -> float
(** Total solver time measured across the analysis (the sequential-
    equivalent cost); divide by the wall-clock time of {!prepare} to
    estimate the pool speedup. *)

val run_all : ?seed:int -> ?scale:float -> ?budget_seconds:float -> unit -> string

(** {1 Fault-tolerant campaigns} *)

module Journal : module type of Journal
(** The append-only JSONL journal backing checkpoint/resume. *)

type campaign = {
  context : context;  (** tables/figures render from this as usual *)
  tasks : Benchlib.Analysis.task list;
      (** one per repository instance, in instance order — resumed or
          freshly run, [Ok] or failed *)
  resumed : int;  (** instances skipped because the journal had them *)
  journal_corrupt : int;
      (** journal lines dropped on resume (torn tail, bad JSON, or
          entries that no longer decode) — their instances rerun *)
}

val prepare_campaign :
  ?seed:int ->
  ?scale:float ->
  ?budget_seconds:float ->
  ?budget:(unit -> Kit.Deadline.t) ->
  ?budget_for:(attempt:int -> unit -> Kit.Deadline.t) ->
  ?retries:int ->
  ?mem_mb:int ->
  ?max_k:int ->
  ?jobs:int ->
  ?intra:bool ->
  ?isolate:bool ->
  ?wall:(attempt:int -> float) ->
  ?shard:int * int ->
  ?cache:Benchlib.Result_cache.t ->
  ?journal:string ->
  ?resume:bool ->
  unit ->
  (campaign, string) result
(** {!prepare}, hardened for long campaigns. Every instance runs inside
    {!Kit.Guard.run} (via {!Benchlib.Analysis.analyze_outcomes}): a
    crash, stack overflow, [HB_MEM_MB] trip or leaked timeout becomes
    that instance's recorded outcome and the campaign continues.
    [retries] / [budget_for] / [mem_mb] / [isolate] / [wall] are
    forwarded there; with [isolate] (default [HB_ISOLATE=1]) each
    instance runs in a forked worker under {!Kit.Proc}'s wall-clock
    watchdog and hard memory rlimit, and the journal hook runs in the
    monitor process — a hung or memory-hungry instance is hard-killed
    and journaled as [Timeout] / [Out_of_memory] without disturbing its
    siblings. The isolated pass completes before any domain pool starts
    (the ghd/fractional passes), keeping fork and domains apart.

    [journal] names a JSONL file that receives the header up front and
    one entry per instance the moment its outcome exists, so a killed
    process loses at most the in-flight instances. With [resume:true]
    and an existing journal, recorded instances are not rerun: their
    [Ok] records (including measured seconds) are rebuilt from the
    journal, so the final tables equal those of the uninterrupted run.
    A journal written under different [seed]/[scale]/[max_k] is
    rejected ([Error]), since mixing two campaigns would corrupt every
    aggregate; a journal with content whose line 1 does not parse has
    lost its run parameters and is likewise rejected; corrupt entry
    lines are skipped, counted, and their instances simply rerun.

    [shard (s, n)] restricts the run to instances whose index in the
    full repository list satisfies [index mod n = s] — a deterministic
    split (matching {!Benchlib.Repository.pack}), so [n] machines each
    running one shard into its own journal cover every instance exactly
    once; {!merge_journals} then rebuilds the unsharded journal. The
    header carries no shard field, keeping shard journals mutually
    header-compatible.

    [cache] consults/feeds a {!Benchlib.Result_cache} at every
    Check(HD,k) level (validated hits replace solves; definitive
    verdicts are stored; timeouts pass through uncached), so a repeated
    campaign under the same fuel budget produces identical tables while
    skipping the solves.

    The ghd/fractional passes run on the stitched record list each
    time — under a fuel budget their verdicts are deterministic, so
    resume reproduces them exactly. *)

val merge_journals : into:string -> string list -> (int * int, string) result
(** Merge the journals at [paths] — typically one per campaign shard —
    into a single journal at [into], atomically written. All inputs
    must have a parseable, mutually header-compatible line 1 (same
    refusal rules as resume). Entries are deduplicated by instance name
    (first occurrence wins) and reordered to repository instance order,
    so the output is deterministic in its inputs — shard journals merge
    to the same file no matter how each shard's completions interleaved.
    Resuming a campaign from the merged journal reruns nothing and
    renders tables identical (measured seconds aside) to the unsharded
    run's. Returns [Ok (entries, corrupt_lines_skipped)]. *)

val campaign_summary : campaign -> string
(** Deterministic one-screen digest: outcome counts, resume/retry
    counts, and one line per failed instance (label, attempts, first
    line of the crash detail). *)
