type op = Le | Ge | Eq

type problem = {
  minimize : bool;
  objective : float array;
  rows : (float array * op * float) list;
}

type solution = { value : float; x : float array }

type result = Optimal of solution | Infeasible | Unbounded

let eps = 1e-9

(* Simplex effort per fractional-cover LP (Kit.Metrics; recorded only when
   enabled). *)
let m_pivots = Kit.Metrics.counter "lp.pivots"
let m_solves = Kit.Metrics.counter "lp.solves"

(* Tableau layout: columns are [structural vars | slack/surplus | artificials],
   one artificial per row, plus the right-hand side held separately.
   The initial basis consists of the artificials, so phase 1 always has a
   feasible start. Bland's rule (smallest eligible index, for entering and
   for ties on leaving) guarantees termination. *)

type tableau = {
  m : int;  (* rows *)
  cols : int;  (* structural + slack columns (artificials excluded) *)
  total : int;  (* all columns incl. artificials *)
  t : float array array;  (* m x total *)
  rhs : float array;
  basis : int array;  (* basis.(i) = column basic in row i *)
  art0 : int;  (* first artificial column *)
}

let build_tableau n rows =
  let m = List.length rows in
  (* Normalise to b >= 0. *)
  let rows =
    List.map
      (fun (a, op, b) ->
        if Array.length a <> n then invalid_arg "Lp: row length mismatch";
        if b < 0.0 then
          ( Array.map (fun x -> -.x) a,
            (match op with Le -> Ge | Ge -> Le | Eq -> Eq),
            -.b )
        else (a, op, b))
      rows
  in
  let n_slack =
    List.fold_left (fun acc (_, op, _) -> match op with Eq -> acc | Le | Ge -> acc + 1) 0 rows
  in
  let cols = n + n_slack in
  let total = cols + m in
  let t = Array.make_matrix m total 0.0 in
  let rhs = Array.make m 0.0 in
  let basis = Array.make m 0 in
  let slack = ref n in
  List.iteri
    (fun i (a, op, b) ->
      Array.blit a 0 t.(i) 0 n;
      (match op with
      | Le ->
          t.(i).(!slack) <- 1.0;
          incr slack
      | Ge ->
          t.(i).(!slack) <- -1.0;
          incr slack
      | Eq -> ());
      t.(i).(cols + i) <- 1.0;
      basis.(i) <- cols + i;
      rhs.(i) <- b)
    rows;
  { m; cols; total; t; rhs; basis; art0 = cols }

let pivot tab ~row ~col =
  Kit.Metrics.incr m_pivots;
  let { t; rhs; m; total; basis; _ } = tab in
  let p = t.(row).(col) in
  for j = 0 to total - 1 do
    t.(row).(j) <- t.(row).(j) /. p
  done;
  rhs.(row) <- rhs.(row) /. p;
  for i = 0 to m - 1 do
    if i <> row then begin
      let f = t.(i).(col) in
      if Float.abs f > 0.0 then begin
        for j = 0 to total - 1 do
          t.(i).(j) <- t.(i).(j) -. (f *. t.(row).(j))
        done;
        rhs.(i) <- rhs.(i) -. (f *. rhs.(row))
      end
    end
  done;
  basis.(row) <- col

(* One simplex phase on cost vector [c] (length total). [allowed j] limits
   the columns that may enter the basis. Returns `Optimal or `Unbounded. *)
let run_phase tab c allowed =
  let { m; total; t; rhs; basis; _ } = tab in
  let reduced = Array.make total 0.0 in
  let rec iterate () =
    (* reduced_j = c_j - c_B · column_j *)
    for j = 0 to total - 1 do
      reduced.(j) <- c.(j)
    done;
    for i = 0 to m - 1 do
      let cb = c.(basis.(i)) in
      if Float.abs cb > 0.0 then
        for j = 0 to total - 1 do
          reduced.(j) <- reduced.(j) -. (cb *. t.(i).(j))
        done
    done;
    (* Bland: smallest improving column. *)
    let entering = ref (-1) in
    (try
       for j = 0 to total - 1 do
         if allowed j && reduced.(j) < -.eps then begin
           entering := j;
           raise Exit
         end
       done
     with Exit -> ());
    if !entering < 0 then `Optimal
    else begin
      let col = !entering in
      (* Ratio test with Bland tie-break on basis variable index. *)
      let row = ref (-1) and best = ref infinity in
      for i = 0 to m - 1 do
        if t.(i).(col) > eps then begin
          let ratio = rhs.(i) /. t.(i).(col) in
          if
            ratio < !best -. eps
            || (Float.abs (ratio -. !best) <= eps
               && !row >= 0
               && basis.(i) < basis.(!row))
          then begin
            best := ratio;
            row := i
          end
        end
      done;
      if !row < 0 then `Unbounded
      else begin
        pivot tab ~row:!row ~col;
        iterate ()
      end
    end
  in
  iterate ()

let objective_value c tab =
  let v = ref 0.0 in
  for i = 0 to tab.m - 1 do
    v := !v +. (c.(tab.basis.(i)) *. tab.rhs.(i))
  done;
  !v

let solve { minimize; objective; rows } =
  Kit.Metrics.incr m_solves;
  let n = Array.length objective in
  if rows = [] then
    (* Unconstrained non-negative variables. *)
    let improving =
      Array.exists (fun c -> if minimize then c < -.eps else c > eps) objective
    in
    if improving then Unbounded else Optimal { value = 0.0; x = Array.make n 0.0 }
  else begin
    let tab = build_tableau n rows in
    (* Phase 1: minimise the sum of artificials. *)
    let c1 = Array.make tab.total 0.0 in
    for j = tab.art0 to tab.total - 1 do
      c1.(j) <- 1.0
    done;
    (match run_phase tab c1 (fun _ -> true) with
    | `Unbounded -> assert false (* phase-1 objective is bounded below by 0 *)
    | `Optimal -> ());
    if objective_value c1 tab > 1e-7 then Infeasible
    else begin
      (* Drive any artificial still basic (at zero) out of the basis when
         possible; rows where it is impossible are redundant and harmless
         because artificial columns are forbidden from re-entering. *)
      for i = 0 to tab.m - 1 do
        if tab.basis.(i) >= tab.art0 then begin
          let j = ref 0 and found = ref false in
          while (not !found) && !j < tab.art0 do
            if Float.abs tab.t.(i).(!j) > eps then found := true else incr j
          done;
          if !found then pivot tab ~row:i ~col:!j
        end
      done;
      (* Phase 2 on the real objective. *)
      let c2 = Array.make tab.total 0.0 in
      for j = 0 to n - 1 do
        c2.(j) <- (if minimize then objective.(j) else -.objective.(j))
      done;
      match run_phase tab c2 (fun j -> j < tab.art0) with
      | `Unbounded -> Unbounded
      | `Optimal ->
          let x = Array.make n 0.0 in
          for i = 0 to tab.m - 1 do
            if tab.basis.(i) < n then x.(tab.basis.(i)) <- tab.rhs.(i)
          done;
          let v = objective_value c2 tab in
          Optimal { value = (if minimize then v else -.v); x }
    end
  end

let minimize objective rows = solve { minimize = true; objective; rows }
let maximize objective rows = solve { minimize = false; objective; rows }
