(** A small XML parser, sufficient for XCSP3-style instance files:
    elements, attributes (single or double quoted), text, comments,
    processing instructions/declarations, self-closing tags, CDATA
    sections and the five predefined entities. No DTD or namespace
    handling.

    The descent is resource-bounded: element nesting past
    [HB_PARSE_DEPTH] and inputs over [HB_MAX_INPUT] bytes return a
    clean [Error] instead of overflowing the stack or chewing through
    an absurd payload. Errors carry byte spans via {!Kit.Diag}. *)

type node =
  | Element of string * (string * string) list * node list
  | Text of string

val parse : string -> (node, string) result
(** Parse a document; returns its single root element. The error
    string is the first diagnostic rendered as
    ["line:col: error: message"]. *)

val parse_report : string -> (node, Kit.Diag.t list) result
(** Like {!parse} but with the structured diagnostics. *)

val tag : node -> string option
val attr : node -> string -> string option
val children : node -> node list
val text_content : node -> string
(** Concatenated text of the node and its descendants. *)

val find_child : node -> string -> node option
val find_children : node -> string -> node list
(** Direct children by tag name. *)
