(** XCSP-style CSP instances to hypergraphs (paper §5.5).

    The reader accepts the structural subset of XCSP3: variable
    declarations via [<var>] and [<array>] (with [size="[n]"] or
    [size="[n][m]"] shapes), and constraints of any type under
    [<constraints>], including [<group>] (a template with one [<args>]
    instantiation per constraint) and nested [<block>]s. Each constraint
    becomes a hyperedge over the variables occurring in its scope —
    exactly the paper's translation: a vertex per variable, an edge per
    constraint.

    The writer emits instances in the same shape (extensional constraints
    only), which makes generator output self-describing and round-trips
    with the reader. *)

type instance = {
  name : string;
  variables : string list;  (** expanded variable names, declaration order *)
  scopes : string list list;  (** one scope per constraint *)
}

val parse : string -> (instance, string) result
val parse_file : string -> (instance, string) result

val parse_report : string -> (instance, Kit.Diag.t list) result
(** Like {!parse} but XML errors keep their byte spans; semantic errors
    (missing sections, bad root) anchor at offset 0. *)

val to_hypergraph : instance -> (Hg.Hypergraph.t, string) result
(** Fails when a constraint references an undeclared variable or the
    instance has no constraints. Variables not occurring in any scope are
    dropped (hypergraphs have no isolated vertices). *)

val read : string -> (Hg.Hypergraph.t, string) result
(** [parse] followed by [to_hypergraph]. *)

val read_report : string -> (Hg.Hypergraph.t, Kit.Diag.t list) result
(** Like {!read} with structured diagnostics. *)

val read_file : string -> (Hg.Hypergraph.t, string) result

val to_xml : name:string -> Hg.Hypergraph.t -> string
(** Render a hypergraph as an XCSP-style instance with one extensional
    constraint per edge. *)
