type instance = {
  name : string;
  variables : string list;
  scopes : string list list;
}

(* An <array size="..."> expands to one variable name per cell, so the
   cell count is an allocation the input controls directly; cap it so a
   "size=\"[999999999]\"" bomb is ignored like any other malformed size
   instead of eating the heap. *)
let max_array_cells = 1_000_000

(* "[3]" -> [3]; "[2][4]" -> [2;4] *)
let parse_dims s =
  let s = String.trim s in
  let out = ref [] in
  let i = ref 0 in
  let ok = ref true in
  let len = String.length s in
  while !ok && !i < len do
    if s.[!i] <> '[' then ok := false
    else begin
      let close = try String.index_from s !i ']' with Not_found -> -1 in
      if close < 0 then ok := false
      else begin
        (match int_of_string_opt (String.sub s (!i + 1) (close - !i - 1)) with
        | Some n when n > 0 -> out := n :: !out
        | _ -> ok := false);
        i := close + 1
      end
    end
  done;
  if !ok && !out <> [] then begin
    let cells =
      List.fold_left
        (fun acc n ->
          if acc > max_array_cells / n then max_array_cells + 1 else acc * n)
        1 !out
    in
    if cells > max_array_cells then None else Some (List.rev !out)
  end
  else None

let expand_array id dims =
  let rec go prefix = function
    | [] -> [ prefix ]
    | d :: rest ->
        List.concat (List.init d (fun i -> go (Printf.sprintf "%s[%d]" prefix i) rest))
  in
  go id dims

(* Tokens that look like variable references: name, name[i], name[i][j]. *)
let scope_tokens text =
  let is_token_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_' || c = '[' || c = ']'
  in
  let len = String.length text in
  let out = ref [] in
  let i = ref 0 in
  while !i < len do
    if is_token_char text.[!i] then begin
      let start = !i in
      while !i < len && is_token_char text.[!i] do incr i done;
      out := String.sub text start (!i - start) :: !out
    end
    else incr i
  done;
  List.rev !out

let analyze root =
  match Xml.tag root with
      | Some "instance" -> (
          let name = Option.value (Xml.attr root "id") ~default:"instance" in
          match Xml.find_child root "variables" with
          | None -> Error "XCSP: missing <variables>"
          | Some vars_el -> (
              let variables =
                List.concat_map
                  (fun child ->
                    match (Xml.tag child, Xml.attr child "id") with
                    | Some "var", Some id -> [ id ]
                    | Some "array", Some id -> (
                        match Xml.attr child "size" with
                        | Some size -> (
                            match parse_dims size with
                            | Some dims -> expand_array id dims
                            | None -> [])
                        | None -> [])
                    | _ -> [])
                  (Xml.children vars_el)
              in
              match Xml.find_child root "constraints" with
              | None -> Error "XCSP: missing <constraints>"
              | Some cons_el ->
                  let declared = Hashtbl.create 64 in
                  List.iter (fun v -> Hashtbl.replace declared v ()) variables;
                  (* Array bases, for whole-array references like "y[]". *)
                  let array_bases = Hashtbl.create 8 in
                  List.iter
                    (fun v ->
                      match String.index_opt v '[' with
                      | Some i ->
                          let base = String.sub v 0 i in
                          Hashtbl.replace array_bases base
                            (v :: (Option.value (Hashtbl.find_opt array_bases base) ~default:[]))
                      | None -> ())
                    variables;
                  let scope_of_text text =
                    List.concat_map
                      (fun tok ->
                        if Hashtbl.mem declared tok then [ tok ]
                        else if String.length tok > 2
                                && String.sub tok (String.length tok - 2) 2 = "[]"
                        then
                          let base = String.sub tok 0 (String.length tok - 2) in
                          List.rev
                            (Option.value (Hashtbl.find_opt array_bases base) ~default:[])
                        else [])
                      (scope_tokens text)
                    |> List.sort_uniq compare
                  in
                  let scopes = ref [] in
                  let rec walk node =
                    match Xml.tag node with
                    | Some "block" -> List.iter walk (Xml.children node)
                    | Some "group" -> (
                        (* Template + one <args> per instantiation: scope =
                           template variables ∪ args variables. *)
                        let args = Xml.find_children node "args" in
                        let template_text =
                          String.concat " "
                            (List.filter_map
                               (fun c ->
                                 if Xml.tag c = Some "args" then None
                                 else Some (Xml.text_content c))
                               (Xml.children node))
                        in
                        let template_scope = scope_of_text template_text in
                        match args with
                        | [] -> if template_scope <> [] then scopes := template_scope :: !scopes
                        | _ ->
                            List.iter
                              (fun a ->
                                let s =
                                  List.sort_uniq compare
                                    (template_scope @ scope_of_text (Xml.text_content a))
                                in
                                if s <> [] then scopes := s :: !scopes)
                              args)
                    | Some _ ->
                        let s = scope_of_text (Xml.text_content node) in
                        if s <> [] then scopes := s :: !scopes
                    | None -> ()
                  in
                  List.iter walk (Xml.children cons_el);
                  Ok { name; variables; scopes = List.rev !scopes }))
  | Some t -> Error (Printf.sprintf "XCSP: unexpected root element <%s>" t)
  | None -> Error "XCSP: no root element"

let parse_report src =
  match Xml.parse_report src with
  | Error _ as e -> e
  | Ok root -> (
      match analyze root with
      | Ok _ as ok -> ok
      | Error msg ->
          (* Semantic errors have no better anchor than the document
             start; they still travel in the one diagnostic shape. *)
          Error [ Kit.Diag.error (Kit.Diag.point 0) msg ])

let parse src =
  match parse_report src with
  | Ok _ as ok -> ok
  | Error ds -> Error (Kit.Diag.to_message ~source:src ds)

let parse_file path =
  match open_in_bin path with
  | exception Sys_error m -> Error m
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match really_input_string ic (in_channel_length ic) with
          | s -> parse s
          | exception End_of_file -> Error (path ^ ": truncated file")
          | exception Sys_error m -> Error m)

let to_hypergraph inst =
  if inst.scopes = [] then Error "XCSP: no constraints"
  else begin
    let declared = Hashtbl.create 64 in
    List.iter (fun v -> Hashtbl.replace declared v ()) inst.variables;
    let undeclared =
      List.concat_map
        (fun scope -> List.filter (fun v -> not (Hashtbl.mem declared v)) scope)
        inst.scopes
    in
    match undeclared with
    | v :: _ -> Error (Printf.sprintf "XCSP: undeclared variable %s" v)
    | [] ->
        Ok
          (Hg.Hypergraph.of_named_edges
             (List.mapi (fun i scope -> (Printf.sprintf "c%d" i, scope)) inst.scopes))
  end

let read src =
  match parse src with Error _ as e -> e | Ok inst -> to_hypergraph inst

let read_report src =
  match parse_report src with
  | Error _ as e -> e
  | Ok inst -> (
      match to_hypergraph inst with
      | Ok _ as ok -> ok
      | Error msg -> Error [ Kit.Diag.error (Kit.Diag.point 0) msg ])

let read_file path =
  match parse_file path with Error _ as e -> e | Ok inst -> to_hypergraph inst

let to_xml ~name h =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "<instance id=\"%s\" format=\"XCSP3\" type=\"CSP\">\n  <variables>\n" name);
  Array.iter
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf "    <var id=\"%s\"> 0..1 </var>\n" v))
    h.Hg.Hypergraph.vertex_names;
  Buffer.add_string buf "  </variables>\n  <constraints>\n";
  Array.iteri
    (fun i e ->
      let scope =
        Kit.Bitset.to_list e
        |> List.map (Hg.Hypergraph.vertex_name h)
        |> String.concat " "
      in
      ignore i;
      Buffer.add_string buf
        (Printf.sprintf
           "    <extension>\n      <list> %s </list>\n      <supports> </supports>\n    </extension>\n"
           scope))
    h.Hg.Hypergraph.edges;
  Buffer.add_string buf "  </constraints>\n</instance>\n";
  Buffer.contents buf
