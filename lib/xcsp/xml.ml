type node =
  | Element of string * (string * string) list * node list
  | Text of string

exception Xml_error of Kit.Diag.t

let decode_entities s =
  if not (String.contains s '&') then s
  else begin
    let buf = Buffer.create (String.length s) in
    let i = ref 0 in
    let len = String.length s in
    while !i < len do
      if s.[!i] = '&' then begin
        let close = try String.index_from s !i ';' with Not_found -> -1 in
        if close < 0 then begin
          Buffer.add_char buf '&';
          incr i
        end
        else begin
          let entity = String.sub s (!i + 1) (close - !i - 1) in
          (match entity with
          | "lt" -> Buffer.add_char buf '<'
          | "gt" -> Buffer.add_char buf '>'
          | "amp" -> Buffer.add_char buf '&'
          | "quot" -> Buffer.add_char buf '"'
          | "apos" -> Buffer.add_char buf '\''
          | _ -> Buffer.add_string buf (String.sub s !i (close - !i + 1)));
          i := close + 1
        end
      end
      else begin
        Buffer.add_char buf s.[!i];
        incr i
      end
    done;
    Buffer.contents buf
  end

let parse_report src =
  let len = String.length src in
  let pos = ref 0 in
  let max_depth = Kit.Limits.max_depth () in
  let error msg =
    raise (Xml_error (Kit.Diag.error (Kit.Diag.point !pos) msg))
  in
  let error_at start msg =
    raise (Xml_error (Kit.Diag.error (Kit.Diag.span start !pos) msg))
  in
  let peek_char () = if !pos < len then Some src.[!pos] else None in
  let skip_ws () =
    while
      !pos < len
      && (match src.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let starts_with prefix =
    !pos + String.length prefix <= len
    && String.sub src !pos (String.length prefix) = prefix
  in
  let skip_until close =
    match
      let rec search i =
        if i + String.length close > len then None
        else if String.sub src i (String.length close) = close then Some i
        else search (i + 1)
      in
      search !pos
    with
    | Some i -> pos := i + String.length close
    | None ->
        let start = !pos in
        pos := len;
        error_at start (Printf.sprintf "missing %s" close)
  in
  let is_name_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_' || c = '-' || c = ':' || c = '.'
  in
  let name () =
    let start = !pos in
    while !pos < len && is_name_char src.[!pos] do incr pos done;
    if !pos = start then error "expected name";
    String.sub src start (!pos - start)
  in
  let attribute () =
    let n = name () in
    skip_ws ();
    if peek_char () <> Some '=' then error "expected '='";
    incr pos;
    skip_ws ();
    match peek_char () with
    | Some (('"' | '\'') as q) ->
        let start = !pos in
        incr pos;
        let close = try String.index_from src !pos q with Not_found -> -1 in
        if close < 0 then begin
          pos := len;
          error_at start "unterminated attribute value"
        end;
        let v = String.sub src !pos (close - !pos) in
        pos := close + 1;
        (n, decode_entities v)
    | _ -> error "expected quoted attribute value"
  in
  let rec skip_misc () =
    skip_ws ();
    if starts_with "<!--" then begin
      skip_until "-->";
      skip_misc ()
    end
    else if starts_with "<?" then begin
      skip_until "?>";
      skip_misc ()
    end
    else if starts_with "<!" then begin
      skip_until ">";
      skip_misc ()
    end
  in
  let cdata () =
    (* Caller matched "<![CDATA[". Contents are literal: no entity
       decoding, no nesting — the section ends at the first "]]>". *)
    pos := !pos + 9;
    let start = !pos in
    let rec search i =
      if i + 3 > len then begin
        pos := len;
        error_at start "missing ]]>"
      end
      else if String.sub src i 3 = "]]>" then i
      else search (i + 1)
    in
    let stop = search !pos in
    let text = String.sub src start (stop - start) in
    pos := stop + 3;
    text
  in
  let rec element depth =
    if depth >= max_depth then
      raise (Xml_error (Kit.Limits.depth_error ~at:!pos));
    if peek_char () <> Some '<' then error "expected '<'";
    incr pos;
    let tag = name () in
    let rec attrs acc =
      skip_ws ();
      match peek_char () with
      | Some '>' ->
          incr pos;
          (List.rev acc, `Open)
      | Some '/' ->
          incr pos;
          if peek_char () = Some '>' then begin
            incr pos;
            (List.rev acc, `Selfclosing)
          end
          else error "expected '/>'"
      | Some _ -> attrs (attribute () :: acc)
      | None -> error "unterminated tag"
    in
    let attributes, kind = attrs [] in
    match kind with
    | `Selfclosing -> Element (tag, attributes, [])
    | `Open ->
        let children = content depth tag [] in
        Element (tag, attributes, children)
  and content depth closing acc =
    if !pos >= len then error (Printf.sprintf "missing </%s>" closing)
    else if starts_with "<!--" then begin
      skip_until "-->";
      content depth closing acc
    end
    else if starts_with "<![CDATA[" then
      content depth closing (Text (cdata ()) :: acc)
    else if starts_with "</" then begin
      pos := !pos + 2;
      let n = name () in
      skip_ws ();
      if peek_char () <> Some '>' then error "expected '>'";
      incr pos;
      if n <> closing then
        error (Printf.sprintf "mismatched </%s>, expected </%s>" n closing);
      List.rev acc
    end
    else if peek_char () = Some '<' then
      content depth closing (element (depth + 1) :: acc)
    else begin
      let start = !pos in
      while !pos < len && src.[!pos] <> '<' do incr pos done;
      let text = String.sub src start (!pos - start) in
      if String.trim text = "" then content depth closing acc
      else content depth closing (Text (decode_entities text) :: acc)
    end
  in
  match Kit.Limits.check_input src with
  | Some d -> Error [ d ]
  | None -> (
      try
        skip_misc ();
        let root = element 0 in
        skip_misc ();
        if !pos < len then
          Error
            [ Kit.Diag.error (Kit.Diag.point !pos)
                "trailing content after root element" ]
        else Ok root
      with Xml_error d -> Error [ d ])

let parse src =
  match parse_report src with
  | Ok _ as ok -> ok
  | Error ds -> Error (Kit.Diag.to_message ~source:src ds)

let tag = function Element (t, _, _) -> Some t | Text _ -> None

let attr n key =
  match n with
  | Element (_, attrs, _) -> List.assoc_opt key attrs
  | Text _ -> None

let children = function Element (_, _, c) -> c | Text _ -> []

let rec text_content = function
  | Text t -> t
  | Element (_, _, c) -> String.concat " " (List.map text_content c)

let find_children n t =
  List.filter (fun c -> tag c = Some t) (children n)

let find_child n t = match find_children n t with [] -> None | c :: _ -> Some c
