(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (run with no arguments, or name specific artefacts), plus
   Bechamel micro-benchmarks of the core operations and the ablation
   benches called out in DESIGN.md.

   Environment knobs:
     HB_SCALE   repository scale factor        (default 1.0)
     HB_BUDGET  per-run timeout in seconds     (default 0.5)
     HB_FUEL    per-run fuel budget, overrides HB_BUDGET when > 0
     HB_SEED    repository seed                (default 2019)
     HB_JOBS    analysis domain-pool width     (default: all cores)
     HB_JOURNAL campaign journal path          (default BENCH_journal.jsonl;
                empty disables journaling)
     HB_RESUME  when 1, resume from HB_JOURNAL instead of starting over
     HB_RETRIES per-instance retries with doubling budget (default 0)
     HB_MEM_MB  soft memory budget per process; excess -> out_of_memory
     HB_ISOLATE when 1, run each instance in a forked worker process with
                a hard wall-clock watchdog and a hard memory rlimit
     HB_WALL    watchdog budget in seconds under HB_ISOLATE (default 3600)
     HB_FAULT   fault-injection spec (see Kit.Fault), e.g.
                crash@instance.cq-rand-002:1 or hang@instance.cq-rand-002:1

   HB_JOBS spreads the per-instance analysis over a fixed-size domain
   pool; results are collected in instance order, so tables and row
   orderings never depend on the pool interleaving. With the wall-clock
   HB_BUDGET, verdicts right at the timeout boundary are timing-sensitive
   between any two runs (at any jobs value); set HB_FUEL for a
   deterministic budget that makes every verdict and count bit-identical
   at every HB_JOBS value.

   Perf-harness knobs (the [perf] artefact):
     HB_PERF_ITERS  iterations per micro-kernel      (default 10000)
     HB_PERF_CHECK  path to an allocs/op threshold file; kernels whose
                    minor-words/op exceed their committed threshold make
                    the run exit 7 (the CI perf-smoke gate)

     HB_CACHE   content-addressed result-cache directory for campaigns
                (unset = no cache); the [repo] artefact uses its own
                scratch cache regardless

   Intra-parallelism knobs (the [intra] artefact, explicit only):
     HB_INTRA_BUDGET  per-run wall budget in seconds    (default 10)
     HB_INTRA_CHECK   path to a speedup/overhead threshold file; a
                      failed gate (or any seq/par verdict disagreement)
                      makes the run exit 9 (the CI intra-smoke gate)

   Usage: main.exe [table1|table2|table3|table4|table5|table6|
                    figure3|figure4|figure5|ablation|micro|perf|repo|
                    serve|chaos|fuzz|intra]... *)

let env_float name default =
  match Sys.getenv_opt name with
  | Some v -> ( match float_of_string_opt v with Some f -> f | None -> default)
  | None -> default

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> ( match int_of_string_opt v with Some i -> i | None -> default)
  | None -> default

(* --- Bechamel micro-benchmarks ------------------------------------------------ *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  let rng = Kit.Rng.create 7 in
  let medium = Gen.Random_csp.random rng ~n_variables:30 ~n_constraints:45 ~max_arity:4 in
  let grid = Gen.Structured.grid ~rows:4 ~cols:4 in
  let fano =
    Hg.Hypergraph.of_int_edges
      [ [ 0; 1; 2 ]; [ 0; 3; 4 ]; [ 0; 5; 6 ]; [ 1; 3; 5 ]; [ 1; 4; 6 ];
        [ 2; 3; 6 ]; [ 2; 4; 5 ] ]
  in
  let sep = Kit.Bitset.of_list medium.Hg.Hypergraph.n_vertices [ 0; 1; 2 ] in
  let tests =
    [
      Test.make ~name:"components(medium)"
        (Staged.stage (fun () ->
             Hg.Components.components medium
               ~within:(Hg.Hypergraph.all_edges medium) sep));
      Test.make ~name:"profile(fano)"
        (Staged.stage (fun () -> Hg.Properties.profile fano));
      Test.make ~name:"subedges f(fano,2)"
        (Staged.stage (fun () -> Ghd.Subedges.f_global fano ~k:2));
      Test.make ~name:"detk hd(fano,3)"
        (Staged.stage (fun () -> Detk.solve fano ~k:3));
      Test.make ~name:"detk hd(grid4x4,3)"
        (Staged.stage (fun () -> Detk.solve grid ~k:3));
      Test.make ~name:"balsep(fano,3)"
        (Staged.stage (fun () -> Ghd.Bal_sep.solve fano ~k:3));
      Test.make ~name:"rho*(fano)"
        (Staged.stage (fun () ->
             Fhd.Frac_cover.rho_star fano (Hg.Hypergraph.vertices fano)));
    ]
  in
  let grouped = Test.make_grouped ~name:"hyperbench" ~fmt:"%s %s" tests in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 100) ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  print_endline "Micro-benchmarks (monotonic clock, ns/run):";
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  List.iter
    (fun (name, est) ->
      match Analyze.OLS.estimates est with
      | Some [ ns ] -> Printf.printf "  %-28s %12.0f ns\n" name ns
      | _ -> Printf.printf "  %-28s %12s\n" name "n/a")
    (List.sort compare rows)

(* --- perf: allocation-aware kernel benchmarks -------------------------------- *)

(* Times the mutable-kernel hot paths against reference implementations
   written with the immutable Bitset API only (the pre-kernel fold-of-copies
   idiom), reporting both ns/op and minor-heap words/op, and writes
   BENCH_perf.json. Unlike the bechamel micro benches, allocation rates are
   iteration-count-independent, so the JSON is comparable across machines
   and suitable as a CI regression gate (HB_PERF_CHECK). *)

module Perf = struct
  module B = Kit.Bitset
  module H = Hg.Hypergraph

  (* Immutable reference implementations: one allocation per fold step. *)
  let vertices_of_edges_ref h es =
    B.fold (fun e acc -> B.union acc h.H.edges.(e)) es (B.empty h.H.n_vertices)

  let edges_touching_ref h vs =
    B.fold (fun v acc -> B.union acc h.H.incidence.(v)) vs (B.empty h.H.n_edges)

  let components_ref h ~within u =
    let outside e = B.diff e u in
    let remaining =
      ref
        (B.fold
           (fun e acc ->
             if not (B.is_empty (outside h.H.edges.(e))) then B.add e acc
             else acc)
           within (B.empty h.H.n_edges))
    in
    let result = ref [] in
    let rec grow comp region =
      let touch = B.inter (edges_touching_ref h region) !remaining in
      if B.is_empty touch then comp
      else begin
        remaining := B.diff !remaining touch;
        grow (B.union comp touch)
          (B.union region (outside (vertices_of_edges_ref h touch)))
      end
    in
    let rec loop () =
      match B.choose !remaining with
      | None -> List.rev !result
      | Some e ->
          remaining := B.remove e !remaining;
          let comp = grow (B.singleton h.H.n_edges e) (outside h.H.edges.(e)) in
          result := comp :: !result;
          loop ()
    in
    loop ()

  let separates_ref h ~within u =
    let total = B.cardinal within in
    match components_ref h ~within u with
    | [] -> total > 0
    | [ c ] -> B.cardinal c < total
    | _ :: _ :: _ -> true

  (* (ns/op, minor words/op) over [iters] runs, after warmup. *)
  let measure f iters =
    for _ = 1 to 100 do ignore (Sys.opaque_identity (f ())) done;
    let w0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do ignore (Sys.opaque_identity (f ())) done;
    let t1 = Unix.gettimeofday () in
    let w1 = Gc.minor_words () in
    ((t1 -. t0) *. 1e9 /. float_of_int iters, (w1 -. w0) /. float_of_int iters)

  type row = {
    op : string;
    ns : float;
    words : float;
    base_ns : float;
    base_words : float;
  }

  let run ~iters =
    let rng = Kit.Rng.create 7 in
    let medium =
      Gen.Random_csp.random rng ~n_variables:30 ~n_constraints:45 ~max_arity:4
    in
    let grid = Gen.Structured.grid ~rows:4 ~cols:4 in
    let fano =
      H.of_int_edges
        [ [ 0; 1; 2 ]; [ 0; 3; 4 ]; [ 0; 5; 6 ]; [ 1; 3; 5 ]; [ 1; 4; 6 ];
          [ 2; 3; 6 ]; [ 2; 4; 5 ] ]
    in
    let nv = medium.H.n_vertices and ne = medium.H.n_edges in
    let all = H.all_edges medium in
    let sep = B.of_list nv [ 0; 1; 2 ] in
    let some_edges = B.of_list ne [ 0; 1; 2; 3; 4 ] in
    let front = H.vertices_of_edges medium some_edges in
    (* The rewrites must agree with the reference semantics on the bench
       inputs before we time them. *)
    assert (B.equal (H.vertices_of_edges medium all) (vertices_of_edges_ref medium all));
    assert (B.equal (H.edges_touching medium front) (edges_touching_ref medium front));
    assert (
      List.for_all2 B.equal
        (Hg.Components.components medium ~within:all sep)
        (components_ref medium ~within:all sep));
    assert (
      Hg.Components.separates medium ~within:all sep
      = separates_ref medium ~within:all sep);
    let kernel op current baseline =
      let ns, words = measure current iters in
      let base_ns, base_words = measure baseline iters in
      { op; ns; words; base_ns; base_words }
    in
    let rows =
      [
        kernel "components"
          (fun () -> Hg.Components.components medium ~within:all sep)
          (fun () -> components_ref medium ~within:all sep);
        kernel "vertices_of_edges"
          (fun () -> H.vertices_of_edges medium all)
          (fun () -> vertices_of_edges_ref medium all);
        kernel "edges_touching"
          (fun () -> H.edges_touching medium front)
          (fun () -> edges_touching_ref medium front);
        kernel "separates"
          (fun () -> Hg.Components.separates medium ~within:all sep)
          (fun () -> separates_ref medium ~within:all sep);
      ]
    in
    (* Whole-instance runs: end-to-end effect of the kernel on the search. *)
    let instance name h budget =
      let deadline = Kit.Deadline.of_fuel budget in
      let t0 = Unix.gettimeofday () in
      let verdict, k = Detk.hypertree_width ~deadline h in
      let ms = (Unix.gettimeofday () -. t0) *. 1e3 in
      let hw = match verdict with Some (hw, _) -> hw | None -> -k in
      (name, hw, ms)
    in
    let instances =
      [
        instance "fano" fano 1_000_000;
        instance "grid-4x4" grid 1_000_000;
        instance "csp-medium" medium 200_000;
      ]
    in
    (rows, instances)

  let render_json ~iters rows instances =
    let open Kit.Json in
    to_string
      (Obj
         [
           ("schema", String "hyperbench-perf/1");
           ("iters", Int iters);
           ( "kernels",
             List
               (List.map
                  (fun r ->
                    Obj
                      [
                        ("op", String r.op);
                        ("ns_per_op", Float r.ns);
                        ("minor_words_per_op", Float r.words);
                        ("baseline_ns_per_op", Float r.base_ns);
                        ("baseline_minor_words_per_op", Float r.base_words);
                        ("speedup", Float (r.base_ns /. Float.max r.ns 1e-9));
                        ( "alloc_reduction",
                          Float (r.base_words /. Float.max r.words 1e-9) );
                      ])
                  rows) );
           ( "instances",
             List
               (List.map
                  (fun (name, hw, ms) ->
                    Obj
                      [
                        ("name", String name);
                        ("hw", Int hw);
                        ("wall_ms", Float ms);
                      ])
                  instances) );
         ])

  (* Threshold file: one "<op> <max minor words per op>" per line
     ('#' comments). Allocation rates are deterministic per build, so this
     is a stable, machine-independent regression gate. *)
  let check_thresholds path rows =
    let ic = open_in path in
    let thresholds = ref [] in
    (try
       while true do
         let line = String.trim (input_line ic) in
         if line <> "" && line.[0] <> '#' then
           match String.split_on_char ' ' line |> List.filter (( <> ) "") with
           | [ op; limit ] -> thresholds := (op, float_of_string limit) :: !thresholds
           | _ -> failwith (Printf.sprintf "bad threshold line: %S" line)
       done
     with End_of_file -> close_in ic);
    let failures =
      List.filter_map
        (fun (op, limit) ->
          match List.find_opt (fun r -> r.op = op) rows with
          | None -> Some (Printf.sprintf "threshold for unknown op %S" op)
          | Some r when r.words > limit ->
              Some
                (Printf.sprintf "%s: %.1f minor words/op exceeds threshold %.1f"
                   op r.words limit)
          | Some _ -> None)
        !thresholds
    in
    if failures <> [] then begin
      List.iter (Printf.eprintf "perf regression: %s\n") failures;
      Printf.eprintf "perf: %d kernel(s) over their allocs/op threshold\n%!"
        (List.length failures);
      exit 7
    end

  let main () =
    let iters = env_int "HB_PERF_ITERS" 10_000 in
    let rows, instances = run ~iters in
    Printf.printf "Kernel perf (%d iters; baseline = immutable-API reference):\n" iters;
    Printf.printf "  %-20s %12s %12s %9s %12s %10s\n" "op" "ns/op" "words/op"
      "speedup" "base-ns/op" "alloc-red";
    List.iter
      (fun r ->
        Printf.printf "  %-20s %12.0f %12.1f %8.1fx %12.0f %9.0fx\n" r.op r.ns
          r.words
          (r.base_ns /. Float.max r.ns 1e-9)
          r.base_ns
          (r.base_words /. Float.max r.words 1e-9))
      rows;
    Printf.printf "Whole-instance hypertree_width (fuel-capped):\n";
    List.iter
      (fun (name, hw, ms) ->
        Printf.printf "  %-20s hw=%-3s %10.1f ms\n" name
          (if hw >= 0 then string_of_int hw
           else Printf.sprintf ">=%d?" (-hw))
          ms)
      instances;
    let path = "BENCH_perf.json" in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (render_json ~iters rows instances));
    Printf.printf "Wrote %s\n" path;
    match Sys.getenv_opt "HB_PERF_CHECK" with
    | Some p when p <> "" -> check_thresholds p rows
    | Some _ | None -> ()
end

(* --- repo: persistence formats and result cache ------------------------------ *)

(* Measures the storage layer end to end and writes BENCH_repo.json:
   text vs binary repository load throughput (instances/sec) and on-disk
   size, then a campaign run twice against a fresh result cache — the
   re-run must hit the cache on every definitive verdict and reproduce
   the tables (compared with measured seconds normalised out, the same
   convention as the resilience tests). Fuel-budgeted, so every number
   except the wall-clock rates is machine-independent. *)
module Repo_bench = struct
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path

  let rec dir_bytes path =
    if Sys.is_directory path then
      Array.fold_left
        (fun acc f -> acc + dir_bytes (Filename.concat path f))
        0 (Sys.readdir path)
    else (Unix.stat path).Unix.st_size

  (* Replace every float literal with '#' so measured seconds don't
     defeat the bit-identity comparison (same normalisation as
     test_resilience.ml). *)
  let strip_floats s =
    let buf = Buffer.create (String.length s) in
    let n = String.length s in
    let i = ref 0 in
    let digit c = c >= '0' && c <= '9' in
    while !i < n do
      if digit s.[!i] then begin
        let j = ref !i in
        while !j < n && digit s.[!j] do incr j done;
        if !j < n && s.[!j] = '.' then begin
          incr j;
          while !j < n && digit s.[!j] do incr j done;
          Buffer.add_char buf '#'
        end
        else Buffer.add_string buf (String.sub s !i (!j - !i));
        i := !j
      end
      else begin
        Buffer.add_char buf s.[!i];
        incr i
      end
    done;
    Buffer.contents buf

  let counter snap name =
    Option.value (List.assoc_opt name snap.Kit.Metrics.counters) ~default:0

  let timed_rate ~n ~iters f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do f () done;
    let dt = Unix.gettimeofday () -. t0 in
    float_of_int (n * iters) /. Float.max dt 1e-9

  let main ~seed ~scale ~jobs () =
    let scale = Stdlib.min scale 0.3 in
    let fuel = 50_000 in
    let text_dir = "_bench_repo_text" and pack_dir = "_bench_repo_pack" in
    let cache_dir = "_bench_repo_cache" in
    List.iter rm_rf [ text_dir; pack_dir; cache_dir ];
    let instances = Benchlib.Repository.build ~seed ~scale () in
    let n = List.length instances in
    Benchlib.Repository.save ~dir:text_dir instances;
    Benchlib.Repository.pack ~dir:pack_dir ~shards:2 instances;
    let expect_ok what = function
      | Ok l ->
          if l.Benchlib.Repository.skipped <> [] then begin
            Printf.eprintf "repo bench: %s load skipped entries\n%!" what;
            exit 6
          end;
          List.length l.Benchlib.Repository.instances
      | Error m ->
          Printf.eprintf "repo bench: %s load failed: %s\n%!" what m;
          exit 6
    in
    let iters = 5 in
    let text_rate =
      timed_rate ~n ~iters (fun () ->
          ignore (expect_ok "text" (Benchlib.Repository.load ~dir:text_dir)))
    in
    let pack_rate =
      timed_rate ~n ~iters (fun () ->
          ignore
            (expect_ok "binary" (Benchlib.Repository.load_pack ~dir:pack_dir)))
    in
    let text_bytes = dir_bytes text_dir and pack_bytes = dir_bytes pack_dir in
    (* Campaign twice against one fresh cache; metrics give the per-run
       cache traffic, the stripped tables must agree exactly. *)
    Kit.Metrics.enabled := true;
    let cache = Benchlib.Result_cache.create ~dir:cache_dir in
    let run_campaign () =
      match
        Experiments.prepare_campaign ~seed ~scale
          ~budget:(fun () -> Kit.Deadline.of_fuel fuel)
          ~jobs ~isolate:false ~cache ()
      with
      | Ok c -> c
      | Error m ->
          Printf.eprintf "repo bench: campaign failed: %s\n%!" m;
          exit 6
    in
    let tables c =
      let ctx = c.Experiments.context in
      strip_floats
        (String.concat "\n"
           [
             Experiments.table1 ctx; Experiments.table2 ctx;
             Experiments.figure4 ctx; Experiments.table4 ctx;
           ])
    in
    let before = Kit.Metrics.snapshot () in
    let first = run_campaign () in
    let mid = Kit.Metrics.snapshot () in
    let second = run_campaign () in
    let after = Kit.Metrics.snapshot () in
    Kit.Metrics.enabled := false;
    let delta a b name = counter b name - counter a name in
    let hits = delta mid after "cache.hit" in
    let misses = delta mid after "cache.miss" in
    let invalid = delta mid after "cache.invalid" in
    let looked_up = hits + misses + invalid in
    let hit_rate =
      if looked_up = 0 then 0.0
      else float_of_int hits /. float_of_int looked_up
    in
    let identical = tables first = tables second in
    Printf.printf "Repository formats (%d instances, %d text-load iters):\n" n
      iters;
    Printf.printf "  %-12s %10s %16s\n" "format" "bytes" "instances/sec";
    Printf.printf "  %-12s %10d %16.0f\n" "text" text_bytes text_rate;
    Printf.printf "  %-12s %10d %16.0f\n" "binary" pack_bytes pack_rate;
    Printf.printf
      "Result cache re-run: %d hits / %d misses / %d invalid (hit rate \
       %.2f); first run stored %d\n"
      hits misses invalid hit_rate
      (delta before mid "cache.store");
    Printf.printf "Tables identical across runs (floats stripped): %b\n"
      identical;
    let json =
      let open Kit.Json in
      to_string
        (Obj
           [
             ("schema", String "hyperbench-repo/1");
             ("instances", Int n);
             ("fuel", Int fuel);
             ("text_bytes", Int text_bytes);
             ("pack_bytes", Int pack_bytes);
             ("text_load_per_sec", Float text_rate);
             ("pack_load_per_sec", Float pack_rate);
             ( "cache",
               Obj
                 [
                   ("first_store", Int (delta before mid "cache.store"));
                   ("first_miss", Int (delta before mid "cache.miss"));
                   ("rerun_hit", Int hits);
                   ("rerun_miss", Int misses);
                   ("rerun_invalid", Int invalid);
                   ("rerun_hit_rate", Float hit_rate);
                 ] );
             ("tables_identical", Bool identical);
           ])
    in
    let path = "BENCH_repo.json" in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc json);
    Printf.printf "Wrote %s\n" path;
    List.iter rm_rf [ text_dir; pack_dir; cache_dir ];
    (* The re-run of a cached campaign must actually hit the cache and
       reproduce the tables; failing that is a regression, not a datum. *)
    if hits = 0 || not identical then begin
      Printf.eprintf "repo bench: cache re-run failed (hits=%d identical=%b)\n%!"
        hits identical;
      exit 6
    end
end

(* --- serve: daemon load bench ------------------------------------------------ *)

(* Closed-loop load against a warmed in-process hyperbenchd: HB_SERVE_CLIENTS
   keep-alive clients each issue HB_SERVE_REQS requests cycling a small
   fuel-budgeted corpus. Reports p50/p99 latency, throughput and error
   count into BENCH_serve.json; HB_PERF_CHECK names a threshold file
   ("max_errors N" / "min_rps R" / "max_p99_ms M" lines) that turns a
   regression into exit 7 — the CI serve-gate. Latencies are wall-clock
   and machine-dependent; the verdicts inside the responses are not
   (fuel budget), so errors are a hard signal. *)
module Serve_bench = struct
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

  let percentile sorted p =
    let n = Array.length sorted in
    if n = 0 then 0.0
    else
      sorted.(max 0
                (min (n - 1)
                   (int_of_float ((p /. 100. *. float_of_int (n - 1)) +. 0.5))))

  let check_thresholds path ~errors ~rps ~p99 =
    let ic = open_in path in
    let rules = ref [] in
    (try
       while true do
         let line = String.trim (input_line ic) in
         if line <> "" && line.[0] <> '#' then
           match String.split_on_char ' ' line |> List.filter (( <> ) "") with
           | [ key; limit ] -> rules := (key, float_of_string limit) :: !rules
           | _ -> failwith (Printf.sprintf "bad threshold line: %S" line)
       done
     with End_of_file -> close_in ic);
    let failures =
      List.filter_map
        (fun (key, limit) ->
          let fail fmt = Some (Printf.sprintf fmt limit) in
          match key with
          | "max_errors" when float_of_int errors > limit ->
              fail "errors above max_errors %.0f"
          | "min_rps" when rps < limit -> fail "throughput below min_rps %.0f"
          | "max_p99_ms" when p99 > limit -> fail "p99 above max_p99_ms %.0f"
          | "max_errors" | "min_rps" | "max_p99_ms" -> None
          | k -> Some (Printf.sprintf "unknown serve threshold %S" k))
        !rules
    in
    if failures <> [] then begin
      List.iter (Printf.eprintf "serve regression: %s\n") failures;
      Printf.eprintf "serve: %d threshold(s) violated (errors=%d rps=%.1f p99=%.1fms)\n%!"
        (List.length failures) errors rps p99;
      exit 7
    end

  let main ~seed () =
    Kit.Metrics.enabled := true;
    let clients = max 1 (env_int "HB_SERVE_CLIENTS" 8) in
    let reqs = max 1 (env_int "HB_SERVE_REQS" 50) in
    let fuel =
      let f = env_int "HB_FUEL" 0 in
      if f > 0 then f else 50_000
    in
    (* Small corpus of generated CSP hypergraphs (plus the triangle):
       enough shape variety to mix cache hits, parses and real solves. *)
    let rng = Kit.Rng.create seed in
    let corpus =
      "e1(a,b),e2(b,c),e3(c,a)."
      :: List.map
           (fun (nv, nc) ->
             Hg.Hypergraph.to_string
               (Gen.Random_csp.random rng ~n_variables:nv ~n_constraints:nc
                  ~max_arity:3))
           [ (8, 10); (12, 16); (16, 22); (20, 28) ]
    in
    let cache_dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "hb_serve_bench_%d" (Unix.getpid ()))
    in
    if Sys.file_exists cache_dir then rm_rf cache_dir;
    Unix.mkdir cache_dir 0o755;
    let svc =
      {
        Benchlib.Service.cache =
          Some (Benchlib.Result_cache.create ~dir:cache_dir);
        isolate = false;
        mem_mb = None;
        default_timeout = 10.0;
        max_timeout = 30.0;
        max_k = 4;
        supervisor = Serve.Supervisor.create ();
      }
    in
    let cfg =
      {
        (Serve.Server.default_config ()) with
        Serve.Server.port = 0;
        jobs = max 2 (env_int "HB_JOBS" 4);
        queue = 256;
        rate = 0.;
      }
    in
    let srv = Serve.Server.create cfg (Benchlib.Service.handler svc) in
    let th = Thread.create (fun () -> Serve.Server.serve srv) () in
    let port = Serve.Server.port srv in
    let host = "127.0.0.1" in
    let target = Printf.sprintf "/decompose?k=3&fuel=%d" fuel in
    let headers = [ ("Content-Type", "application/x-hyperbench") ] in
    let do_one conn body =
      match Serve.Client.request conn ~headers ~body "POST" target with
      | Ok r when r.Serve.Client.status = 200 -> true
      | Ok _ | Error _ -> false
    in
    Fun.protect
      ~finally:(fun () ->
        Serve.Server.stop srv;
        Thread.join th;
        rm_rf cache_dir)
      (fun () ->
        (* warm: every corpus entry solved once, cache filled *)
        let wc = Serve.Client.connect ~host ~port () in
        let warm_ok = List.for_all (do_one wc) corpus in
        Serve.Client.close wc;
        if not warm_ok then begin
          Printf.eprintf "serve bench: warmup request failed\n%!";
          exit 6
        end;
        let hits_before =
          Kit.Metrics.get (Kit.Metrics.snapshot ()) "cache.hit"
        in
        let corpus_arr = Array.of_list corpus in
        let errors = Atomic.make 0 in
        let lat = Array.init clients (fun _ -> Array.make reqs 0.0) in
        let t0 = Unix.gettimeofday () in
        let threads =
          List.init clients (fun ci ->
              Thread.create
                (fun () ->
                  let conn = Serve.Client.connect ~host ~port () in
                  Fun.protect
                    ~finally:(fun () -> Serve.Client.close conn)
                    (fun () ->
                      for i = 0 to reqs - 1 do
                        let body =
                          corpus_arr.((ci + i) mod Array.length corpus_arr)
                        in
                        let r0 = Unix.gettimeofday () in
                        if not (do_one conn body) then
                          Atomic.incr errors;
                        lat.(ci).(i) <- (Unix.gettimeofday () -. r0) *. 1000.
                      done))
                ())
        in
        List.iter Thread.join threads;
        let latencies = Array.concat (Array.to_list lat) in
        let wall = Unix.gettimeofday () -. t0 in
        Array.sort compare latencies;
        let total = clients * reqs in
        let errors = Atomic.get errors in
        let rps = float_of_int total /. Float.max wall 1e-9 in
        let p50 = percentile latencies 50. in
        let p99 = percentile latencies 99. in
        let hits =
          Kit.Metrics.get (Kit.Metrics.snapshot ()) "cache.hit" - hits_before
        in
        Printf.printf
          "serve: %d clients x %d reqs  %.1f req/s  p50 %.2f ms  p99 %.2f ms  \
           errors %d  cache hits %d\n"
          clients reqs rps p50 p99 errors hits;
        let json =
          Kit.Json.(
            to_string
              (Obj
                 [
                   ("schema", String "hyperbench-serve/1");
                   ("clients", Int clients);
                   ("requests_per_client", Int reqs);
                   ("total_requests", Int total);
                   ("fuel", Int fuel);
                   ("corpus", Int (Array.length corpus_arr));
                   ("wall_seconds", Float wall);
                   ("requests_per_sec", Float rps);
                   ("p50_ms", Float p50);
                   ("p99_ms", Float p99);
                   ("errors", Int errors);
                   ("cache_hits", Int hits);
                 ]))
        in
        let path = "BENCH_serve.json" in
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc json);
        Printf.printf "Wrote %s\n" path;
        (* any transport or HTTP failure under plain load is a bug, not
           load shedding: the queue above is deeper than clients *)
        match Sys.getenv_opt "HB_PERF_CHECK" with
        | Some p when p <> "" -> check_thresholds p ~errors ~rps ~p99
        | Some _ | None -> ())
end

(* --- serve: chaos soak ------------------------------------------------------- *)

(* Seeded chaos soak against an in-process hyperbenchd: well-behaved
   clients go through [Serve.Client.request_retry] while the Fault
   harness tears, resets and stalls the wire and kills solve workers,
   and a rogue thread runs slowloris heads, mid-body stalls and aborted
   uploads alongside. The run passes only if every well-behaved request
   was correctly answered (200) or honestly refused (429/503 with
   Retry-After), a fault-free replay of every 200 returns a
   byte-identical body (fuel budgets make solves deterministic), the
   breaker/restart counters actually moved, no fds or zombies leaked,
   and the drain join stayed bounded. Violations exit 7 — the CI
   chaos-gate. *)
module Serve_chaos = struct
  let default_spec =
    "stall@serve.read:p0.05:s7;reset@serve.read:p0.03:s8;\
     torn@serve.write:p0.08:s9;kill@serve.worker:p0.2:s11"

  let count_fds () =
    if Sys.file_exists "/proc/self/fd" then
      Some (Array.length (Sys.readdir "/proc/self/fd"))
    else None

  let main ~seed () =
    Kit.Metrics.enabled := true;
    let clients = max 1 (env_int "HB_CHAOS_CLIENTS" 4) in
    let reqs = max 1 (env_int "HB_CHAOS_REQS" 25) in
    let fuel =
      let f = env_int "HB_FUEL" 0 in
      if f > 0 then f else 50_000
    in
    let violations = ref [] in
    let vmu = Mutex.create () in
    let violate fmt =
      Printf.ksprintf
        (fun m ->
          Mutex.lock vmu;
          violations := m :: !violations;
          Mutex.unlock vmu)
        fmt
    in
    let rng = Kit.Rng.create seed in
    let corpus =
      "e1(a,b),e2(b,c),e3(c,a)."
      :: List.map
           (fun (nv, nc) ->
             Hg.Hypergraph.to_string
               (Gen.Random_csp.random rng ~n_variables:nv ~n_constraints:nc
                  ~max_arity:3))
           [ (8, 10); (12, 16); (16, 22) ]
    in
    let corpus_arr = Array.of_list corpus in
    let cache_dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "hb_chaos_%d" (Unix.getpid ()))
    in
    if Sys.file_exists cache_dir then Serve_bench.rm_rf cache_dir;
    Unix.mkdir cache_dir 0o755;
    let svc =
      {
        Benchlib.Service.cache =
          Some (Benchlib.Result_cache.create ~dir:cache_dir);
        isolate = Kit.Proc.enabled ();
        mem_mb = None;
        default_timeout = 5.0;
        max_timeout = 10.0;
        max_k = 4;
        supervisor =
          Serve.Supervisor.create ~threshold:4 ~cooldown:0.2 ~retries:2 ~seed
            ();
      }
    in
    let cfg =
      {
        (Serve.Server.default_config ()) with
        Serve.Server.port = 0;
        jobs = max 2 (env_int "HB_JOBS" 4);
        queue = 64;
        rate = 0.;
        idle_timeout = 2.0;
        drain_grace = 0.5;
        mid_read_timeout = 1.0;
        write_timeout = 5.0;
      }
    in
    let srv = Serve.Server.create cfg (Benchlib.Service.handler svc) in
    let th = Thread.create (fun () -> Serve.Server.serve srv) () in
    let port = Serve.Server.port srv in
    let host = "127.0.0.1" in
    let target = Printf.sprintf "/decompose?k=3&fuel=%d" fuel in
    let headers = [ ("Content-Type", "application/x-hyperbench") ] in
    let fd_before = count_fds () in
    let joined = ref false in
    Fun.protect
      ~finally:(fun () ->
        Kit.Fault.clear ();
        if not !joined then begin
          Serve.Server.stop srv;
          Thread.join th
        end;
        Serve_bench.rm_rf cache_dir)
      (fun () ->
        let spec =
          match Sys.getenv_opt "HB_FAULT" with
          | Some s when s <> "" -> s
          | Some _ | None -> default_spec
        in
        (match Kit.Fault.configure spec with
        | Ok () -> ()
        | Error m ->
            Printf.eprintf "chaos: bad fault spec: %s\n%!" m;
            exit 1);
        Printf.printf "chaos: %d clients x %d reqs under %S\n%!" clients reqs
          spec;
        (* (status, body) per well-behaved request; status 0 = gave up *)
        let record = Array.init clients (fun _ -> Array.make reqs (0, "")) in
        let ok = Atomic.make 0
        and refused = Atomic.make 0 in
        let well_behaved ci =
          for i = 0 to reqs - 1 do
            let body = corpus_arr.((ci + i) mod Array.length corpus_arr) in
            match
              Serve.Client.request_retry ~headers ~body ~retries:6
                ~base_delay:0.02 ~max_delay:0.5 ~deadline:20.0
                ~attempt_timeout:5.0
                ~seed:(seed + (ci * 1000) + i)
                ~host ~port "POST" target
            with
            | Ok r when r.Serve.Client.status = 200 ->
                Atomic.incr ok;
                record.(ci).(i) <- (200, r.Serve.Client.body)
            | Ok r
              when (r.Serve.Client.status = 429 || r.Serve.Client.status = 503)
                   && List.mem_assoc "retry-after" r.Serve.Client.headers ->
                (* honest refusal that outlived the retry budget *)
                Atomic.incr refused;
                record.(ci).(i) <- (r.Serve.Client.status, "")
            | Ok r ->
                violate "client %d req %d: dishonest answer %d%s" ci i
                  r.Serve.Client.status
                  (if r.Serve.Client.status >= 500 then " without Retry-After"
                   else "")
            | Error m -> violate "client %d req %d: retry gave up: %s" ci i m
          done
        in
        (* Rogue traffic: never counted, must also never wedge a worker
           for longer than the server's own timeouts. *)
        let rogue_stop = Atomic.make false in
        let rogue () =
          let head =
            Printf.sprintf
              "POST %s HTTP/1.1\r\nHost: x\r\nContent-Type: \
               application/x-hyperbench\r\nContent-Length: 999\r\n\r\n"
              target
          in
          while not (Atomic.get rogue_stop) do
            (try
               (* slowloris: a header drip that never finishes *)
               let c = Serve.Client.connect ~timeout:3.0 ~host ~port () in
               Serve.Client.write_raw c "POST /decompose HTTP/1.1\r\n";
               Unix.sleepf 0.2;
               Serve.Client.write_raw c "Host: x\r\n";
               Unix.sleepf 0.2;
               Serve.Client.close c;
               (* mid-body stall, then abandon *)
               let c = Serve.Client.connect ~timeout:3.0 ~host ~port () in
               Serve.Client.write_raw c (head ^ "e1(a");
               Unix.sleepf 0.4;
               Serve.Client.close c;
               (* aborted upload: head only, immediate hangup *)
               let c = Serve.Client.connect ~timeout:3.0 ~host ~port () in
               Serve.Client.write_raw c head;
               Serve.Client.close c
             with Unix.Unix_error _ -> ());
            Unix.sleepf 0.1
          done
        in
        let rogue_th = Thread.create rogue () in
        let threads =
          List.init clients (fun ci -> Thread.create (fun () -> well_behaved ci) ())
        in
        List.iter Thread.join threads;
        Atomic.set rogue_stop true;
        Thread.join rogue_th;
        Kit.Fault.clear ();
        (* chaos over: replay every 200 fault-free; fuel-budgeted solves
           (and byte-identical cache hits) make the bodies deterministic *)
        let replayed = ref 0 in
        Array.iteri
          (fun ci row ->
            Array.iteri
              (fun i (status, body) ->
                if status = 200 then begin
                  incr replayed;
                  let b = corpus_arr.((ci + i) mod Array.length corpus_arr) in
                  match
                    Serve.Client.oneshot ~timeout:15.0 ~host ~port ~headers
                      ~body:b "POST" target
                  with
                  | Ok r when r.Serve.Client.status = 200 ->
                      if r.Serve.Client.body <> body then
                        violate
                          "client %d req %d: fault-free replay diverged" ci i
                  | Ok r ->
                      violate "client %d req %d: fault-free replay got %d" ci
                        i r.Serve.Client.status
                  | Error m ->
                      violate "client %d req %d: fault-free replay failed: %s"
                        ci i m
                end)
              row)
          record;
        (* the episode must be visible in /metrics *)
        let metrics_body =
          match Serve.Client.oneshot ~host ~port "GET" "/metrics" with
          | Ok r when r.Serve.Client.status = 200 -> r.Serve.Client.body
          | Ok r ->
              violate "/metrics answered %d" r.Serve.Client.status;
              ""
          | Error m ->
              violate "/metrics failed: %s" m;
              ""
        in
        let snap = Kit.Metrics.snapshot () in
        let restarts = Kit.Metrics.get snap "serve.worker_restarts" in
        if restarts = 0 then
          violate "no worker restarts recorded under kill faults";
        let contains needle s =
          let nl = String.length needle and sl = String.length s in
          let rec at i =
            i + nl <= sl && (String.sub s i nl = needle || at (i + 1))
          in
          at 0
        in
        if not (contains "hb_serve_worker_restarts" metrics_body) then
          violate "/metrics missing hb_serve_worker_restarts";
        (* bounded, clean drain with everything settled *)
        let t0 = Unix.gettimeofday () in
        Serve.Server.stop srv;
        Thread.join th;
        joined := true;
        let drain_s = Unix.gettimeofday () -. t0 in
        if drain_s > 10.0 then
          violate "drain took %.1fs (bound 10s)" drain_s;
        (* no zombie sandbox workers, no fd growth *)
        (match Unix.waitpid [ Unix.WNOHANG ] (-1) with
        | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
        | 0, _ -> violate "sandbox worker still running after drain"
        | pid, _ -> violate "unreaped sandbox worker %d (zombie)" pid);
        let fd_after = count_fds () in
        (match (fd_before, fd_after) with
        | Some b, Some a when a > b + 8 ->
            violate "fd growth: %d before, %d after" b a
        | _ -> ());
        let total = clients * reqs in
        let ok = Atomic.get ok and refused = Atomic.get refused in
        Printf.printf
          "chaos: %d/%d answered, %d honestly refused, %d replayed \
           byte-identical, %d worker restarts, drain %.2fs\n"
          ok total refused !replayed restarts drain_s;
        let json =
          Kit.Json.(
            to_string
              (Obj
                 [
                   ("schema", String "hyperbench-chaos/1");
                   ("seed", Int seed);
                   ("fault_spec", String spec);
                   ("clients", Int clients);
                   ("requests_per_client", Int reqs);
                   ("answered_200", Int ok);
                   ("honest_refusals", Int refused);
                   ("replayed", Int !replayed);
                   ("worker_restarts", Int restarts);
                   ("breaker_opened",
                    Int (Kit.Metrics.get snap "serve.breaker.solver.opened"
                        + Kit.Metrics.get snap
                            "serve.breaker.isolation.opened"));
                   ("drain_seconds", Float drain_s);
                   ("violations",
                    List (List.rev_map (fun v -> String v) !violations));
                 ]))
        in
        let path = "BENCH_chaos.json" in
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc json);
        Printf.printf "Wrote %s\n" path;
        if !violations <> [] then begin
          List.iter
            (Printf.eprintf "chaos violation: %s\n")
            (List.rev !violations);
          Printf.eprintf "chaos: %d violation(s)\n%!"
            (List.length !violations);
          exit 7
        end)
end

(* --- fuzz: adversarial parser soak ------------------------------------------ *)

(* Runs the seeded fuzz harness over all four frontends and writes
   BENCH_fuzz.json with per-format parse/reject/crash counts. Crash-freedom
   is the gate: any failure exits 7, like a chaos violation. *)
module Fuzz_bench = struct
  let main ~seed ~cases () =
    Printf.printf "fuzz: %d cases per format, seed %d\n%!" cases seed;
    let summaries =
      List.map
        (fun fmt ->
          let t0 = Unix.gettimeofday () in
          let s = Benchlib.Fuzz_driver.run fmt ~cases ~seed in
          let dt = Unix.gettimeofday () -. t0 in
          Printf.printf
            "fuzz: %-5s parsed %6d  rejected %6d  crashes %d  (%.2fs)\n%!"
            (Benchlib.Fuzz_driver.format_name fmt)
            s.Benchlib.Fuzz_driver.parsed s.rejected (List.length s.failures)
            dt;
          (s, dt))
        Benchlib.Fuzz_driver.all_formats
    in
    let json =
      Kit.Json.(
        to_string
          (Obj
             [
               ("schema", String "hyperbench-fuzz/1");
               ("seed", Int seed);
               ("cases_per_format", Int cases);
               ( "formats",
                 List
                   (List.map
                      (fun ((s : Benchlib.Fuzz_driver.summary), dt) ->
                        Obj
                          [
                            ( "format",
                              String (Benchlib.Fuzz_driver.format_name s.fmt)
                            );
                            ("parsed", Int s.parsed);
                            ("rejected", Int s.rejected);
                            ("crashes", Int (List.length s.failures));
                            ("seconds", Float dt);
                          ])
                      summaries) );
             ]))
    in
    let path = "BENCH_fuzz.json" in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc json);
    Printf.printf "Wrote %s\n" path;
    let crashes =
      List.concat_map (fun ((s : Benchlib.Fuzz_driver.summary), _) ->
          List.map
            (fun (f : Benchlib.Fuzz_driver.failure) ->
              Printf.sprintf "%s case %d: %s"
                (Benchlib.Fuzz_driver.format_name s.fmt)
                f.index f.outcome)
            s.failures)
        summaries
    in
    if crashes <> [] then begin
      List.iter (Printf.eprintf "fuzz crash: %s\n") crashes;
      Printf.eprintf "fuzz: %d crash(es)\n%!" (List.length crashes);
      exit 7
    end
end

(* --- intra: intra-instance parallel BalSep ----------------------------------- *)

(* Measures the work-stealing Ghd.Par_bal_sep against sequential
   Ghd.Bal_sep on seeded instances that make BalSep recurse, and writes
   BENCH_intra.json: per-instance sequential / 1-domain / N-domain wall
   times and verdicts, the recursion-depth histogram (balsep.depth,
   recorded over the N-domain runs) and the scheduler's steal traffic.

   HB_INTRA_BUDGET  per-run wall budget in seconds (default 10)
   HB_INTRA_CHECK   threshold file; failing any line exits 9:
     min_seconds T         only instances whose sequential run took at
                           least T seconds gate the speedup (vacuous on
                           boxes where nothing does, e.g. 2-vCPU smoke)
     min_speedup S         N-domain speedup must reach S on every gated
                           instance
     max_jobs1_overhead R  1-domain wall / sequential wall <= R on every
                           gated instance (the zero-regression gate)
   A verdict disagreement between sequential and parallel always exits 9,
   threshold file or not — that is a correctness failure, not a perf
   miss. *)
module Intra_bench = struct
  type row = {
    name : string;
    k : int;
    seq_s : float;
    seq_v : string;
    par1_s : float;
    par1_v : string;
    parn_s : float;
    parn_v : string;
  }

  let verdict = function
    | Detk.Decomposition _ -> "yes"
    | Detk.No_decomposition -> "no"
    | Detk.Timeout -> "timeout"

  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)

  (* Instances chosen to exercise the recursion: grids are the paper's
     hard CSP Other family (width grows with the side), the CSP and
     colouring instances give BalSep many balanced separators to split
     on, scheduling is moderately cyclic. *)
  let instances ~seed =
    let rng = Kit.Rng.create seed in
    [
      ("grid-5x5", Gen.Structured.grid ~rows:5 ~cols:5, 3);
      ("grid-6x6", Gen.Structured.grid ~rows:6 ~cols:6, 3);
      ( "csp-large",
        Gen.Random_csp.random rng ~n_variables:60 ~n_constraints:90
          ~max_arity:4,
        3 );
      ("coloring-40", Gen.Structured.coloring rng ~n_vertices:40 ~avg_degree:4.0, 3);
      ("scheduling-8x5", Gen.Structured.scheduling rng ~jobs:8 ~machines:5, 3);
    ]

  let render_json ~jobs ~budget rows depth steal =
    let open Kit.Json in
    let speedup r = r.seq_s /. Float.max r.parn_s 1e-9 in
    to_string
      (Obj
         [
           ("schema", String "hyperbench-intra/1");
           ("jobs", Int jobs);
           ("budget_seconds", Float budget);
           ( "instances",
             List
               (List.map
                  (fun r ->
                    Obj
                      [
                        ("name", String r.name);
                        ("k", Int r.k);
                        ("seq_seconds", Float r.seq_s);
                        ("seq_verdict", String r.seq_v);
                        ("par1_seconds", Float r.par1_s);
                        ("par1_verdict", String r.par1_v);
                        ("parn_seconds", Float r.parn_s);
                        ("parn_verdict", String r.parn_v);
                        ("speedup", Float (speedup r));
                      ])
                  rows) );
           ( "depth_histogram",
             match depth with
             | None -> Null
             | Some (edges, counts) ->
                 Obj
                   [
                     ("edges", List (List.map (fun e -> Int e) (Array.to_list edges)));
                     ("counts", List (List.map (fun c -> Int c) (Array.to_list counts)));
                   ] );
           ( "steal",
             Obj
               [
                 ("forked", Int steal.Kit.Steal.forked);
                 ("executed", Int steal.Kit.Steal.executed);
                 ("stolen", Int steal.Kit.Steal.stolen);
                 ("inlined", Int steal.Kit.Steal.inlined);
               ] );
         ])

  let read_thresholds path =
    let ic = open_in path in
    let kv = ref [] in
    (try
       while true do
         let line = String.trim (input_line ic) in
         if line <> "" && line.[0] <> '#' then
           match String.split_on_char ' ' line |> List.filter (( <> ) "") with
           | [ key; v ] -> kv := (key, float_of_string v) :: !kv
           | _ -> failwith (Printf.sprintf "bad threshold line: %S" line)
       done
     with End_of_file -> close_in ic);
    !kv

  let check_thresholds path rows =
    let kv = read_thresholds path in
    let get k = List.assoc_opt k kv in
    let min_seconds = Option.value ~default:1.0 (get "min_seconds") in
    let failures = ref [] in
    let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
    List.iter
      (fun r ->
        let gated = r.seq_s >= min_seconds && r.seq_v <> "timeout" in
        (match get "min_speedup" with
        | Some s when gated && r.seq_s /. Float.max r.parn_s 1e-9 < s ->
            fail "%s: speedup %.2fx below threshold %.2fx (seq %.2fs, par %.2fs)"
              r.name
              (r.seq_s /. Float.max r.parn_s 1e-9)
              s r.seq_s r.parn_s
        | _ -> ());
        match get "max_jobs1_overhead" with
        | Some m when gated && r.par1_s > r.seq_s *. m ->
            fail "%s: jobs=1 wall %.2fs exceeds %.2fx the sequential %.2fs"
              r.name r.par1_s m r.seq_s
        | _ -> ())
      rows;
    if !failures <> [] then begin
      List.iter (Printf.eprintf "intra regression: %s\n") !failures;
      Printf.eprintf "intra: %d gate failure(s)\n%!" (List.length !failures);
      exit 9
    end

  let main ~seed ~jobs () =
    let budget = env_float "HB_INTRA_BUDGET" 10.0 in
    let deadline () = Kit.Deadline.of_seconds budget in
    let solve_seq h k =
      timed (fun () ->
          (Ghd.Bal_sep.solve ~deadline:(deadline ()) h ~k).Ghd.Bal_sep.outcome)
    in
    let solve_par ~jobs h k =
      timed (fun () ->
          (Ghd.Par_bal_sep.solve ~jobs ~deadline:(deadline ()) h ~k)
            .Ghd.Bal_sep.outcome)
    in
    let insts = instances ~seed in
    (* Sequential and 1-domain passes run metrics-off; the depth
       histogram and steal totals are recorded over the N-domain pass
       only, so they describe the parallel runs alone. *)
    let partial =
      List.map
        (fun (name, h, k) ->
          let o_seq, seq_s = solve_seq h k in
          let o_par1, par1_s = solve_par ~jobs:1 h k in
          (name, h, k, verdict o_seq, seq_s, verdict o_par1, par1_s))
        insts
    in
    Kit.Metrics.reset ();
    Kit.Metrics.enabled := true;
    Kit.Steal.reset_totals ();
    let rows =
      List.map
        (fun (name, h, k, seq_v, seq_s, par1_v, par1_s) ->
          let o_parn, parn_s = solve_par ~jobs h k in
          { name; k; seq_s; seq_v; par1_s; par1_v; parn_s;
            parn_v = verdict o_parn })
        partial
    in
    let snap = Kit.Metrics.snapshot () in
    Kit.Metrics.enabled := false;
    Kit.Metrics.reset ();
    let depth = Kit.Metrics.get_histogram snap "balsep.depth" in
    let steal = Kit.Steal.totals () in
    Printf.printf "Intra-instance parallel BalSep (%d domains, %.0fs budget):\n"
      jobs budget;
    Printf.printf "  %-16s %2s %22s %22s %22s %8s\n" "instance" "k"
      "seq" "par jobs=1" (Printf.sprintf "par jobs=%d" jobs) "speedup";
    List.iter
      (fun r ->
        Printf.printf "  %-16s %2d %12.2fs %-8s %12.2fs %-8s %12.2fs %-8s %7.2fx\n"
          r.name r.k r.seq_s r.seq_v r.par1_s r.par1_v r.parn_s r.parn_v
          (r.seq_s /. Float.max r.parn_s 1e-9))
      rows;
    (match depth with
    | Some (edges, counts) ->
        Printf.printf "  recursion depth: %s\n"
          (String.concat ", "
             (List.mapi
                (fun i c ->
                  if i < Array.length edges then
                    Printf.sprintf "<=%d: %d" edges.(i) c
                  else Printf.sprintf ">%d: %d" edges.(Array.length edges - 1) c)
                (Array.to_list counts)))
    | None -> ());
    Printf.printf "  steal scheduler: forked %d, executed %d, stolen %d, inlined %d\n"
      steal.Kit.Steal.forked steal.Kit.Steal.executed steal.Kit.Steal.stolen
      steal.Kit.Steal.inlined;
    let path = "BENCH_intra.json" in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (render_json ~jobs ~budget rows depth steal));
    Printf.printf "Wrote %s\n" path;
    (* Differential agreement is unconditional: parallel scheduling must
       never change an answer. Timeout rows are exempt only against a
       decided row on the MORE generous side (a parallel run may finish
       inside a budget the sequential run blew, and vice versa) — but a
       yes against a no is always fatal. *)
    let disagreements =
      List.filter
        (fun r ->
          let decided v = v = "yes" || v = "no" in
          (decided r.seq_v && decided r.parn_v && r.seq_v <> r.parn_v)
          || (decided r.seq_v && decided r.par1_v && r.seq_v <> r.par1_v))
        rows
    in
    if disagreements <> [] then begin
      List.iter
        (fun r ->
          Printf.eprintf "intra verdict disagreement: %s (seq %s, par1 %s, par%d %s)\n"
            r.name r.seq_v r.par1_v jobs r.parn_v)
        disagreements;
      Printf.eprintf "intra: %d verdict disagreement(s)\n%!"
        (List.length disagreements);
      exit 9
    end;
    match Sys.getenv_opt "HB_INTRA_CHECK" with
    | Some p when p <> "" -> check_thresholds p rows
    | Some _ | None -> ()
end

(* --- main ------------------------------------------------------------------- *)

let () =
  (* A typo'd HB_FAULT spec must not silently run fault-free (the CLI
     applies the same refusal). *)
  (match Kit.Fault.config_error () with
  | Some m ->
      Printf.eprintf "bench: bad HB_FAULT spec: %s\n%!" m;
      exit 1
  | None -> ());
  let scale = env_float "HB_SCALE" 1.0 in
  let budget_seconds = env_float "HB_BUDGET" 0.5 in
  let fuel = env_int "HB_FUEL" 0 in
  let budget =
    if fuel > 0 then Some (fun () -> Kit.Deadline.of_fuel fuel) else None
  in
  let seed = env_int "HB_SEED" 2019 in
  let jobs = Kit.Pool.default_jobs () in
  let args = List.tl (Array.to_list Sys.argv) in
  let wants name = args = [] || List.mem name args in
  let needs_ctx =
    List.exists wants
      [ "table1"; "table2"; "table3"; "table4"; "table5"; "table6";
        "figure3"; "figure4"; "figure5"; "ablation" ]
  in
  Printf.printf
    "HyperBench reproduction harness (seed=%d scale=%.2f budget=%s jobs=%d%s)\n\n"
    seed scale
    (if fuel > 0 then Printf.sprintf "%d fuel" fuel
     else Printf.sprintf "%.2fs" budget_seconds)
    jobs
    (if Kit.Proc.enabled () then " isolate" else "");
  if needs_ctx then begin
    (* Metrics stay on for the analysis + tables and are switched off
       before the micro benches: bechamel's iteration counts are
       nondeterministic and would pollute the (fuel-reproducible)
       counters reported below. *)
    Kit.Metrics.enabled := true;
    let journal =
      match Sys.getenv_opt "HB_JOURNAL" with
      | Some "" -> None
      | Some p -> Some p
      | None -> Some "BENCH_journal.jsonl"
    in
    let resume = Sys.getenv_opt "HB_RESUME" = Some "1" in
    (* Retries escalate the budget (2^attempt), matching the CLI. *)
    let budget_for =
      if fuel > 0 then
        Some (fun ~attempt () -> Kit.Deadline.of_fuel (fuel * (1 lsl attempt)))
      else
        Some
          (fun ~attempt () ->
            Kit.Deadline.of_seconds
              (budget_seconds *. float_of_int (1 lsl attempt)))
    in
    let t0 = Unix.gettimeofday () in
    let campaign =
      match
        Experiments.prepare_campaign ~seed ~scale ~budget_seconds ?budget
          ?budget_for ~jobs ?journal ~resume ()
        (* HB_ISOLATE / HB_WALL are picked up inside analyze_outcomes
           (isolate defaults to Kit.Proc.enabled, wall to HB_WALL). *)
      with
      | Ok c -> c
      | Error m ->
          Printf.eprintf "campaign failed: %s\n%!" m;
          exit 6
    in
    let ctx = campaign.Experiments.context in
    let wall = Unix.gettimeofday () -. t0 in
    let solver = Experiments.solver_seconds ctx in
    Printf.printf
      "Prepared %d instances; analysis took %.1fs wall on %d jobs (%.1fs solver time, %.1fx speedup)\n\n"
      (List.length ctx.Experiments.instances)
      wall jobs solver
      (if wall > 0.0 then solver /. wall else 1.0);
    print_endline (Experiments.campaign_summary campaign);
    let emit name render = if wants name then print_endline (render ctx) in
    emit "table1" Experiments.table1;
    emit "table2" Experiments.table2;
    emit "figure3" Experiments.figure3;
    emit "figure4" Experiments.figure4;
    emit "figure5" Experiments.figure5;
    emit "table3" Experiments.table3;
    emit "table4" Experiments.table4;
    emit "table5" Experiments.table5;
    emit "table6" Experiments.table6;
    if wants "ablation" then
      print_endline (Experiments.ablation ?budget ~budget_seconds ctx);
    let snap = Kit.Metrics.snapshot () in
    print_endline (Experiments.metrics_summary snap);
    let path = "BENCH_metrics.json" in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (Kit.Metrics.to_json snap));
    Printf.printf "Wrote %s\n" path;
    Kit.Metrics.enabled := false
  end;
  if wants "repo" then Repo_bench.main ~seed ~scale ~jobs ();
  if wants "serve" then Serve_bench.main ~seed ();
  (* chaos arms the global fault harness, so it never runs by default —
     only when asked for by name *)
  if List.mem "chaos" args then Serve_chaos.main ~seed ();
  (* the fuzz soak is an explicit leg too: thousands of adversarial parses
     are gate material, not default micro-bench material *)
  if List.mem "fuzz" args then
    Fuzz_bench.main ~seed ~cases:(env_int "HB_FUZZ_CASES" 2000) ();
  (* explicit leg too: several multi-second solver runs, gate material
     for the HB_INTRA_CHECK thresholds rather than default output *)
  if List.mem "intra" args then Intra_bench.main ~seed ~jobs ();
  if wants "perf" then Perf.main ();
  if wants "micro" then micro ()
