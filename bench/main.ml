(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (run with no arguments, or name specific artefacts), plus
   Bechamel micro-benchmarks of the core operations and the ablation
   benches called out in DESIGN.md.

   Environment knobs:
     HB_SCALE   repository scale factor        (default 1.0)
     HB_BUDGET  per-run timeout in seconds     (default 0.5)
     HB_FUEL    per-run fuel budget, overrides HB_BUDGET when > 0
     HB_SEED    repository seed                (default 2019)
     HB_JOBS    analysis domain-pool width     (default: all cores)
     HB_JOURNAL campaign journal path          (default BENCH_journal.jsonl;
                empty disables journaling)
     HB_RESUME  when 1, resume from HB_JOURNAL instead of starting over
     HB_RETRIES per-instance retries with doubling budget (default 0)
     HB_MEM_MB  soft memory budget per process; excess -> out_of_memory
     HB_ISOLATE when 1, run each instance in a forked worker process with
                a hard wall-clock watchdog and a hard memory rlimit
     HB_WALL    watchdog budget in seconds under HB_ISOLATE (default 3600)
     HB_FAULT   fault-injection spec (see Kit.Fault), e.g.
                crash@instance.cq-rand-002:1 or hang@instance.cq-rand-002:1

   HB_JOBS spreads the per-instance analysis over a fixed-size domain
   pool; results are collected in instance order, so tables and row
   orderings never depend on the pool interleaving. With the wall-clock
   HB_BUDGET, verdicts right at the timeout boundary are timing-sensitive
   between any two runs (at any jobs value); set HB_FUEL for a
   deterministic budget that makes every verdict and count bit-identical
   at every HB_JOBS value.

   Usage: main.exe [table1|table2|table3|table4|table5|table6|
                    figure3|figure4|figure5|ablation|micro]... *)

let env_float name default =
  match Sys.getenv_opt name with
  | Some v -> ( match float_of_string_opt v with Some f -> f | None -> default)
  | None -> default

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> ( match int_of_string_opt v with Some i -> i | None -> default)
  | None -> default

(* --- Bechamel micro-benchmarks ------------------------------------------------ *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  let rng = Kit.Rng.create 7 in
  let medium = Gen.Random_csp.random rng ~n_variables:30 ~n_constraints:45 ~max_arity:4 in
  let grid = Gen.Structured.grid ~rows:4 ~cols:4 in
  let fano =
    Hg.Hypergraph.of_int_edges
      [ [ 0; 1; 2 ]; [ 0; 3; 4 ]; [ 0; 5; 6 ]; [ 1; 3; 5 ]; [ 1; 4; 6 ];
        [ 2; 3; 6 ]; [ 2; 4; 5 ] ]
  in
  let sep = Kit.Bitset.of_list medium.Hg.Hypergraph.n_vertices [ 0; 1; 2 ] in
  let tests =
    [
      Test.make ~name:"components(medium)"
        (Staged.stage (fun () ->
             Hg.Components.components medium
               ~within:(Hg.Hypergraph.all_edges medium) sep));
      Test.make ~name:"profile(fano)"
        (Staged.stage (fun () -> Hg.Properties.profile fano));
      Test.make ~name:"subedges f(fano,2)"
        (Staged.stage (fun () -> Ghd.Subedges.f_global fano ~k:2));
      Test.make ~name:"detk hd(fano,3)"
        (Staged.stage (fun () -> Detk.solve fano ~k:3));
      Test.make ~name:"detk hd(grid4x4,3)"
        (Staged.stage (fun () -> Detk.solve grid ~k:3));
      Test.make ~name:"balsep(fano,3)"
        (Staged.stage (fun () -> Ghd.Bal_sep.solve fano ~k:3));
      Test.make ~name:"rho*(fano)"
        (Staged.stage (fun () ->
             Fhd.Frac_cover.rho_star fano (Hg.Hypergraph.vertices fano)));
    ]
  in
  let grouped = Test.make_grouped ~name:"hyperbench" ~fmt:"%s %s" tests in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 100) ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  print_endline "Micro-benchmarks (monotonic clock, ns/run):";
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  List.iter
    (fun (name, est) ->
      match Analyze.OLS.estimates est with
      | Some [ ns ] -> Printf.printf "  %-28s %12.0f ns\n" name ns
      | _ -> Printf.printf "  %-28s %12s\n" name "n/a")
    (List.sort compare rows)

(* --- main ------------------------------------------------------------------- *)

let () =
  (* A typo'd HB_FAULT spec must not silently run fault-free (the CLI
     applies the same refusal). *)
  (match Kit.Fault.config_error () with
  | Some m ->
      Printf.eprintf "bench: bad HB_FAULT spec: %s\n%!" m;
      exit 1
  | None -> ());
  let scale = env_float "HB_SCALE" 1.0 in
  let budget_seconds = env_float "HB_BUDGET" 0.5 in
  let fuel = env_int "HB_FUEL" 0 in
  let budget =
    if fuel > 0 then Some (fun () -> Kit.Deadline.of_fuel fuel) else None
  in
  let seed = env_int "HB_SEED" 2019 in
  let jobs = Kit.Pool.default_jobs () in
  let args = List.tl (Array.to_list Sys.argv) in
  let wants name = args = [] || List.mem name args in
  let needs_ctx =
    List.exists wants
      [ "table1"; "table2"; "table3"; "table4"; "table5"; "table6";
        "figure3"; "figure4"; "figure5"; "ablation" ]
  in
  Printf.printf
    "HyperBench reproduction harness (seed=%d scale=%.2f budget=%s jobs=%d%s)\n\n"
    seed scale
    (if fuel > 0 then Printf.sprintf "%d fuel" fuel
     else Printf.sprintf "%.2fs" budget_seconds)
    jobs
    (if Kit.Proc.enabled () then " isolate" else "");
  if needs_ctx then begin
    (* Metrics stay on for the analysis + tables and are switched off
       before the micro benches: bechamel's iteration counts are
       nondeterministic and would pollute the (fuel-reproducible)
       counters reported below. *)
    Kit.Metrics.enabled := true;
    let journal =
      match Sys.getenv_opt "HB_JOURNAL" with
      | Some "" -> None
      | Some p -> Some p
      | None -> Some "BENCH_journal.jsonl"
    in
    let resume = Sys.getenv_opt "HB_RESUME" = Some "1" in
    (* Retries escalate the budget (2^attempt), matching the CLI. *)
    let budget_for =
      if fuel > 0 then
        Some (fun ~attempt () -> Kit.Deadline.of_fuel (fuel * (1 lsl attempt)))
      else
        Some
          (fun ~attempt () ->
            Kit.Deadline.of_seconds
              (budget_seconds *. float_of_int (1 lsl attempt)))
    in
    let t0 = Unix.gettimeofday () in
    let campaign =
      match
        Experiments.prepare_campaign ~seed ~scale ~budget_seconds ?budget
          ?budget_for ~jobs ?journal ~resume ()
        (* HB_ISOLATE / HB_WALL are picked up inside analyze_outcomes
           (isolate defaults to Kit.Proc.enabled, wall to HB_WALL). *)
      with
      | Ok c -> c
      | Error m ->
          Printf.eprintf "campaign failed: %s\n%!" m;
          exit 6
    in
    let ctx = campaign.Experiments.context in
    let wall = Unix.gettimeofday () -. t0 in
    let solver = Experiments.solver_seconds ctx in
    Printf.printf
      "Prepared %d instances; analysis took %.1fs wall on %d jobs (%.1fs solver time, %.1fx speedup)\n\n"
      (List.length ctx.Experiments.instances)
      wall jobs solver
      (if wall > 0.0 then solver /. wall else 1.0);
    print_endline (Experiments.campaign_summary campaign);
    let emit name render = if wants name then print_endline (render ctx) in
    emit "table1" Experiments.table1;
    emit "table2" Experiments.table2;
    emit "figure3" Experiments.figure3;
    emit "figure4" Experiments.figure4;
    emit "figure5" Experiments.figure5;
    emit "table3" Experiments.table3;
    emit "table4" Experiments.table4;
    emit "table5" Experiments.table5;
    emit "table6" Experiments.table6;
    if wants "ablation" then
      print_endline (Experiments.ablation ?budget ~budget_seconds ctx);
    let snap = Kit.Metrics.snapshot () in
    print_endline (Experiments.metrics_summary snap);
    let path = "BENCH_metrics.json" in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (Kit.Metrics.to_json snap));
    Printf.printf "Wrote %s\n" path;
    Kit.Metrics.enabled := false
  end;
  if wants "micro" then micro ()
